//! Architectural parameters of the evaluated models.

use serde::{Deserialize, Serialize};

/// One decoder-only transformer architecture.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Display name, e.g. `"LLaMA-13B"`.
    pub name: String,
    /// Number of transformer layers.
    pub layers: usize,
    /// Hidden (model) dimension.
    pub hidden: usize,
    /// Query heads.
    pub heads: usize,
    /// KV heads (< heads under grouped-query attention).
    pub kv_heads: usize,
    /// Dimension per head.
    pub head_dim: usize,
    /// Feed-forward intermediate dimension.
    pub ffn: usize,
    /// Vocabulary size.
    pub vocab: usize,
}

impl ModelSpec {
    /// LLaMA-7B (also the LLaMA-2-7B backbone).
    pub fn llama_7b() -> ModelSpec {
        ModelSpec {
            name: "LLaMA-7B".into(),
            layers: 32,
            hidden: 4096,
            heads: 32,
            kv_heads: 32,
            head_dim: 128,
            ffn: 11008,
            vocab: 32000,
        }
    }

    /// LLaMA-13B (also the LLaMA-2-13B backbone).
    pub fn llama_13b() -> ModelSpec {
        ModelSpec {
            name: "LLaMA-13B".into(),
            layers: 40,
            hidden: 5120,
            heads: 40,
            kv_heads: 40,
            head_dim: 128,
            ffn: 13824,
            vocab: 32000,
        }
    }

    /// LLaMA-30B.
    pub fn llama_30b() -> ModelSpec {
        ModelSpec {
            name: "LLaMA-30B".into(),
            layers: 60,
            hidden: 6656,
            heads: 52,
            kv_heads: 52,
            head_dim: 128,
            ffn: 17920,
            vocab: 32000,
        }
    }

    /// LLaMA-65B.
    pub fn llama_65b() -> ModelSpec {
        ModelSpec {
            name: "LLaMA-65B".into(),
            layers: 80,
            hidden: 8192,
            heads: 64,
            kv_heads: 64,
            head_dim: 128,
            ffn: 22016,
            vocab: 32000,
        }
    }

    /// LLaMA-2-70B (grouped-query attention, 8 KV heads).
    pub fn llama2_70b() -> ModelSpec {
        ModelSpec {
            name: "LLaMA2-70B".into(),
            layers: 80,
            hidden: 8192,
            heads: 64,
            kv_heads: 8,
            head_dim: 128,
            ffn: 28672,
            vocab: 32000,
        }
    }

    /// Mistral-7B (grouped-query attention, 8 KV heads).
    pub fn mistral_7b() -> ModelSpec {
        ModelSpec {
            name: "Mistral-7B".into(),
            layers: 32,
            hidden: 4096,
            heads: 32,
            kv_heads: 8,
            head_dim: 128,
            ffn: 14336,
            vocab: 32000,
        }
    }

    /// LLaMA-3.1-8B-Instruct (Table 4).
    pub fn llama31_8b() -> ModelSpec {
        ModelSpec {
            name: "LLaMA-3.1-8B".into(),
            layers: 32,
            hidden: 4096,
            heads: 32,
            kv_heads: 8,
            head_dim: 128,
            ffn: 14336,
            vocab: 128256,
        }
    }

    /// The Figure 11c model sweep, in the paper's order.
    pub fn figure11c_set() -> Vec<ModelSpec> {
        vec![
            ModelSpec::llama_7b(),
            ModelSpec::mistral_7b(),
            ModelSpec::llama_13b(),
            ModelSpec::llama_30b(),
            ModelSpec::llama_65b(),
            ModelSpec::llama2_70b(),
        ]
    }

    /// KV projection width: `kv_heads × head_dim`.
    pub fn kv_dim(&self) -> usize {
        self.kv_heads * self.head_dim
    }

    /// Shape of one request's per-layer K (or V) cache segment after
    /// `seq` generated tokens: `(seq, kv_dim)`. This is the tensor unit
    /// the online KV codec compresses per request — and the unit the
    /// batched multi-tensor submission APIs feed through the shared
    /// worker pool when many requests are in flight (`kv_dim` is a
    /// multiple of the codec's 128-value group for every model in the
    /// zoo; see `examples/batched_serving.rs`).
    pub fn kv_request_shape(&self, seq: usize) -> (usize, usize) {
        (seq, self.kv_dim())
    }

    /// Approximate parameter count (projections + embeddings).
    pub fn params(&self) -> u64 {
        let h = self.hidden as u64;
        let f = self.ffn as u64;
        let kvd = self.kv_dim() as u64;
        let per_layer = h * h // Q
            + 2 * h * kvd // K, V
            + h * h // O
            + 3 * h * f; // gate, up, down
        self.layers as u64 * per_layer + 2 * self.vocab as u64 * h
    }

    /// Uses grouped-query attention?
    pub fn uses_gqa(&self) -> bool {
        self.kv_heads < self.heads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_request_shapes_are_group_aligned() {
        // Every zoo model's per-request KV segment must slice into whole
        // 128-value codec groups — the invariant the batched serving
        // path relies on.
        for m in ModelSpec::figure11c_set() {
            let (rows, cols) = m.kv_request_shape(2048);
            assert_eq!(rows, 2048);
            assert_eq!(
                cols % 128,
                0,
                "{} kv_dim {} not group-aligned",
                m.name,
                cols
            );
        }
    }

    #[test]
    fn parameter_counts_match_model_names() {
        let cases = [
            (ModelSpec::llama_7b(), 6.7e9, 7.5e9),
            (ModelSpec::llama_13b(), 12.5e9, 13.5e9),
            (ModelSpec::llama_30b(), 31.0e9, 34.0e9),
            (ModelSpec::llama_65b(), 63.0e9, 67.0e9),
            (ModelSpec::llama2_70b(), 66.0e9, 71.0e9),
            (ModelSpec::mistral_7b(), 7.0e9, 7.6e9),
            (ModelSpec::llama31_8b(), 7.5e9, 8.5e9),
        ];
        for (m, lo, hi) in cases {
            let p = m.params() as f64;
            assert!(p >= lo && p <= hi, "{}: {} params", m.name, p);
        }
    }

    #[test]
    fn gqa_flags() {
        assert!(!ModelSpec::llama_13b().uses_gqa());
        assert!(ModelSpec::mistral_7b().uses_gqa());
        assert!(ModelSpec::llama2_70b().uses_gqa());
    }

    #[test]
    fn head_geometry_consistent() {
        for m in ModelSpec::figure11c_set() {
            assert_eq!(m.heads * m.head_dim, m.hidden, "{}", m.name);
            assert!(m.kv_heads <= m.heads);
            assert_eq!(m.heads % m.kv_heads, 0, "{}", m.name);
        }
    }
}
