//! Decode-step workloads: model → kernel stream.

use ecco_sim::{ExecScheme, Kernel, SimEngine, StepTime};
use serde::{Deserialize, Serialize};

use crate::models::ModelSpec;

/// One auto-regressive decode step of `batch` sequences at context length
/// `seq`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DecodeWorkload {
    /// The model being served.
    pub model: ModelSpec,
    /// Sequences decoded together.
    pub batch: usize,
    /// Current context length (KV entries per sequence).
    pub seq: usize,
}

impl DecodeWorkload {
    /// Creates a workload.
    ///
    /// # Panics
    ///
    /// Panics if `batch` or `seq` is zero.
    pub fn new(model: ModelSpec, batch: usize, seq: usize) -> DecodeWorkload {
        assert!(batch > 0 && seq > 0, "batch and seq must be positive");
        DecodeWorkload { model, batch, seq }
    }

    /// Expands the decode step into the kernel stream TensorRT-LLM-style
    /// runtimes launch: per layer a fused QKV projection, rotary +
    /// attention, output projection, fused gate/up, SiLU·mul, down
    /// projection, two norms — plus any scheme-specific extra kernels
    /// (QuaRot's online rotations), plus the final norm and LM head.
    pub fn kernels(&self, scheme: &ExecScheme) -> Vec<Kernel> {
        let m = &self.model;
        let b = self.batch;
        let h = m.hidden;
        let kvd = m.kv_dim();
        let mut out = Vec::with_capacity(m.layers * (9 + scheme.extra_kernels_per_layer) + 2);
        for _ in 0..m.layers {
            out.push(Kernel::elementwise(b * h)); // input RMSNorm
            out.push(Kernel::gemm(b, h + 2 * kvd, h)); // fused QKV
            out.push(Kernel::elementwise(b * (h + kvd))); // rotary embed
            out.push(Kernel::AttentionDecode {
                batch: b,
                heads: m.heads,
                kv_heads: m.kv_heads,
                head_dim: m.head_dim,
                seq: self.seq,
            });
            out.push(Kernel::gemm(b, h, h)); // O projection
            out.push(Kernel::elementwise(b * h)); // post-attn RMSNorm
            out.push(Kernel::gemm(b, 2 * m.ffn, h)); // fused gate+up
            out.push(Kernel::elementwise(b * m.ffn)); // SiLU · mul
            out.push(Kernel::gemm(b, h, m.ffn)); // down projection
            for _ in 0..scheme.extra_kernels_per_layer {
                out.push(Kernel::Elementwise {
                    elems: b * h,
                    flops_per_elem: scheme.extra_flops_per_act_elem,
                });
            }
        }
        out.push(Kernel::elementwise(b * h)); // final norm
        out.push(Kernel::gemm(b, m.vocab, h)); // LM head
        out
    }

    /// Times one decode step under `scheme`.
    pub fn step_time(&self, engine: &SimEngine, scheme: &ExecScheme) -> StepTime {
        engine.step_time(&self.kernels(scheme), scheme)
    }

    /// Total sector-level memory requests of one decode step.
    pub fn memory_requests(&self, engine: &SimEngine, scheme: &ExecScheme) -> u64 {
        self.kernels(scheme)
            .iter()
            .map(|k| engine.memory_requests(k, scheme))
            .sum()
    }
}

/// One prefill pass over a `batch × prompt_len` prompt.
///
/// The paper omits prefill from its evaluation because it is
/// compute-bound, runs once, and is a negligible share of long decodes;
/// this workload exists to *validate* that claim in the simulator (see
/// `prefill_is_compute_bound`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PrefillWorkload {
    /// The model being served.
    pub model: ModelSpec,
    /// Prompts processed together.
    pub batch: usize,
    /// Prompt length in tokens.
    pub prompt_len: usize,
}

impl PrefillWorkload {
    /// Creates a prefill workload.
    ///
    /// # Panics
    ///
    /// Panics if `batch` or `prompt_len` is zero.
    pub fn new(model: ModelSpec, batch: usize, prompt_len: usize) -> PrefillWorkload {
        assert!(
            batch > 0 && prompt_len > 0,
            "batch and prompt must be positive"
        );
        PrefillWorkload {
            model,
            batch,
            prompt_len,
        }
    }

    /// The prefill kernel stream: the same projections as decode but with
    /// `m = batch × prompt_len` rows, plus causal self-attention over the
    /// prompt (modeled as a decode-attention kernel at the mean causal
    /// context `prompt_len / 2` per token).
    pub fn kernels(&self, scheme: &ExecScheme) -> Vec<Kernel> {
        let m = &self.model;
        let rows = self.batch * self.prompt_len;
        let h = m.hidden;
        let kvd = m.kv_dim();
        let mut out = Vec::with_capacity(m.layers * 9 + 2);
        for _ in 0..m.layers {
            out.push(Kernel::elementwise(rows * h));
            out.push(Kernel::gemm(rows, h + 2 * kvd, h));
            out.push(Kernel::elementwise(rows * (h + kvd)));
            out.push(Kernel::AttentionPrefill {
                batch: self.batch,
                heads: m.heads,
                kv_heads: m.kv_heads,
                head_dim: m.head_dim,
                prompt: self.prompt_len,
            });
            out.push(Kernel::gemm(rows, h, h));
            out.push(Kernel::elementwise(rows * h));
            out.push(Kernel::gemm(rows, 2 * m.ffn, h));
            out.push(Kernel::elementwise(rows * m.ffn));
            out.push(Kernel::gemm(rows, h, m.ffn));
            for _ in 0..scheme.extra_kernels_per_layer {
                out.push(Kernel::Elementwise {
                    elems: rows * h,
                    flops_per_elem: scheme.extra_flops_per_act_elem,
                });
            }
        }
        out.push(Kernel::elementwise(rows * h));
        out.push(Kernel::gemm(rows, m.vocab, h));
        out
    }

    /// Times the prefill pass under `scheme`.
    pub fn step_time(&self, engine: &SimEngine, scheme: &ExecScheme) -> StepTime {
        engine.step_time(&self.kernels(scheme), scheme)
    }
}

/// A reproducible multi-session serving traffic mix: `sessions` total
/// sessions, each with a ragged prompt (prefill burst) and decode
/// length drawn from the configured ranges, at most `live` of them
/// decoding concurrently. [`TrafficMix::events`] expands the mix into
/// the deterministic event stream the paged KV serving engine
/// (`ecco-serve`) replays — prefill writes arrive as one burst per
/// session, decode writes arrive one token per round-robin turn, and
/// sessions close when their decode budget is spent.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficMix {
    /// Total sessions the mix opens over its lifetime.
    pub sessions: usize,
    /// Target concurrently-live sessions (admission cap).
    pub live: usize,
    /// Inclusive range of prompt lengths, in tokens.
    pub prompt_tokens: (usize, usize),
    /// Inclusive range of generated (decode) lengths, in tokens.
    pub decode_tokens: (usize, usize),
    /// Seed of the per-session length draws.
    pub seed: u64,
}

/// One session's drawn lengths within a [`TrafficMix`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionPlan {
    /// Session index within the mix (0-based arrival order).
    pub session: usize,
    /// Prompt length in tokens (prefill burst).
    pub prompt: usize,
    /// Generated length in tokens (decode steps).
    pub decode: usize,
}

/// One step of a serving trace (see [`TrafficMix::events`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrafficEvent {
    /// A session arrives (allocate its page table).
    Open {
        /// Arriving session index.
        session: usize,
    },
    /// The session's prompt is processed: `tokens` KV rows arrive at
    /// once — the write burst that distinguishes prefill from decode.
    Prefill {
        /// Session index.
        session: usize,
        /// Prompt length in tokens.
        tokens: usize,
    },
    /// One auto-regressive decode step: a single KV row arrives.
    Decode {
        /// Session index.
        session: usize,
    },
    /// The session ends (free its pages).
    Close {
        /// Departing session index.
        session: usize,
    },
}

/// SplitMix64 step — the dependency-free seeded generator behind the
/// traffic draws (deterministic across platforms and thread counts).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn draw(state: &mut u64, (lo, hi): (usize, usize)) -> usize {
    debug_assert!(lo <= hi);
    lo + (splitmix64(state) % (hi - lo + 1) as u64) as usize
}

impl TrafficMix {
    /// An interactive chat-style mix: short ragged prompts, long ragged
    /// decodes — the decode-dominated regime the paper evaluates.
    pub fn chat(sessions: usize, live: usize, seed: u64) -> TrafficMix {
        TrafficMix {
            sessions,
            live,
            prompt_tokens: (16, 128),
            decode_tokens: (32, 256),
            seed,
        }
    }

    /// A summarization/RAG-style mix: long prompts, short decodes —
    /// prefill-dominated, stressing burst admission.
    pub fn summarize(sessions: usize, live: usize, seed: u64) -> TrafficMix {
        TrafficMix {
            sessions,
            live,
            prompt_tokens: (256, 1024),
            decode_tokens: (8, 64),
            seed,
        }
    }

    /// Draws every session's lengths, in arrival order. Deterministic in
    /// `seed` alone.
    ///
    /// # Panics
    ///
    /// Panics if `sessions` or `live` is zero, a range is inverted, or
    /// the prompt range admits zero-length prompts.
    pub fn plans(&self) -> Vec<SessionPlan> {
        assert!(self.sessions > 0 && self.live > 0, "empty mix");
        assert!(
            self.prompt_tokens.0 >= 1 && self.prompt_tokens.0 <= self.prompt_tokens.1,
            "bad prompt range"
        );
        assert!(
            self.decode_tokens.0 <= self.decode_tokens.1,
            "bad decode range"
        );
        let mut state = self.seed ^ 0xECC0_5E47;
        (0..self.sessions)
            .map(|session| SessionPlan {
                session,
                prompt: draw(&mut state, self.prompt_tokens),
                decode: draw(&mut state, self.decode_tokens),
            })
            .collect()
    }

    /// Expands the mix into its serving trace: sessions are admitted in
    /// arrival order whenever the live set has room, each admission is
    /// an [`TrafficEvent::Open`] followed by its prefill burst, then
    /// live sessions take round-robin single-token decode turns until
    /// their budget is spent and they close. The stream is a pure
    /// function of the mix.
    pub fn events(&self) -> Vec<TrafficEvent> {
        let plans = self.plans();
        let mut events = Vec::new();
        let mut next = 0usize;
        let mut active: Vec<(usize, usize)> = Vec::new(); // (session, decode left)
        loop {
            while active.len() < self.live && next < plans.len() {
                let p = plans[next];
                events.push(TrafficEvent::Open { session: p.session });
                events.push(TrafficEvent::Prefill {
                    session: p.session,
                    tokens: p.prompt,
                });
                active.push((p.session, p.decode));
                next += 1;
            }
            if active.is_empty() {
                break;
            }
            // One round-robin decode turn per live session with budget.
            for (session, left) in active.iter_mut() {
                if *left > 0 {
                    events.push(TrafficEvent::Decode { session: *session });
                    *left -= 1;
                }
            }
            active.retain(|&(session, left)| {
                if left == 0 {
                    events.push(TrafficEvent::Close { session });
                    false
                } else {
                    true
                }
            });
        }
        events
    }

    /// Total KV rows (tokens) the whole trace writes.
    pub fn total_tokens(&self) -> usize {
        self.plans().iter().map(|p| p.prompt + p.decode).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecco_sim::GpuSpec;

    fn engine() -> SimEngine {
        SimEngine::new(GpuSpec::a100())
    }

    #[test]
    fn kernel_count_scales_with_layers() {
        let wl = DecodeWorkload::new(ModelSpec::llama_7b(), 1, 128);
        let n = wl.kernels(&ExecScheme::fp16_trt()).len();
        assert_eq!(n, 32 * 9 + 2);
        let nq = wl.kernels(&ExecScheme::quarot()).len();
        assert_eq!(nq, 32 * (9 + 6) + 2);
    }

    #[test]
    fn ecco_speedup_in_paper_range() {
        // Figure 11a regime: LLaMA-13B, seq 2048. The paper reports
        // 2.6–3.2x vs TensorRT FP16 across batch sizes.
        let e = engine();
        for batch in [1, 8, 64] {
            let wl = DecodeWorkload::new(ModelSpec::llama_13b(), batch, 2048);
            let fp16 = wl.step_time(&e, &ExecScheme::fp16_trt()).total;
            let ecco = wl.step_time(&e, &ExecScheme::ecco()).total;
            let s = fp16 / ecco;
            assert!(s > 2.0 && s < 4.5, "batch {batch}: speedup {s}");
        }
    }

    #[test]
    fn gqa_models_gain_less() {
        // Figure 11c: Mistral-7B (GQA) shows a smaller Ecco speedup than
        // the size-comparable LLaMA-7B (MHA) at long context.
        let e = engine();
        let mha = DecodeWorkload::new(ModelSpec::llama_7b(), 32, 4096);
        let gqa = DecodeWorkload::new(ModelSpec::mistral_7b(), 32, 4096);
        let s_mha = mha.step_time(&e, &ExecScheme::fp16_trt()).total
            / mha.step_time(&e, &ExecScheme::ecco()).total;
        let s_gqa = gqa.step_time(&e, &ExecScheme::fp16_trt()).total
            / gqa.step_time(&e, &ExecScheme::ecco()).total;
        assert!(
            s_gqa < s_mha,
            "GQA speedup {s_gqa} must trail MHA speedup {s_mha}"
        );
    }

    #[test]
    fn longer_context_grows_attention_share() {
        let e = engine();
        let short = DecodeWorkload::new(ModelSpec::llama_13b(), 8, 128)
            .step_time(&e, &ExecScheme::fp16_trt());
        let long = DecodeWorkload::new(ModelSpec::llama_13b(), 8, 4096)
            .step_time(&e, &ExecScheme::fp16_trt());
        let share_short = short.attention / short.total;
        let share_long = long.attention / long.total;
        assert!(share_long > share_short);
    }

    #[test]
    fn prefill_is_compute_bound() {
        // The paper's justification for omitting prefill: at prompt 1024,
        // compression buys little because the GEMMs are compute-bound.
        let e = engine();
        let pf = PrefillWorkload::new(ModelSpec::llama_13b(), 4, 1024);
        let fp16 = pf.step_time(&e, &ExecScheme::fp16_trt()).total;
        let ecco = pf.step_time(&e, &ExecScheme::ecco()).total;
        let speedup = fp16 / ecco;
        assert!(
            speedup < 1.5,
            "prefill speedup {speedup} should be small (compute-bound)"
        );

        // And prefill runs once while decode runs per token: for a
        // 512-token generation its share of total time is minor.
        let decode = DecodeWorkload::new(ModelSpec::llama_13b(), 4, 1024)
            .step_time(&e, &ExecScheme::fp16_trt())
            .total;
        assert!(fp16 < decode * 512.0 * 0.25, "prefill is a minor share");
    }

    #[test]
    fn traffic_trace_is_deterministic_and_consistent() {
        let mix = TrafficMix::chat(40, 8, 17);
        assert_eq!(mix.events(), mix.events(), "trace must be reproducible");
        assert_ne!(
            mix.events(),
            TrafficMix::chat(40, 8, 18).events(),
            "seed must matter"
        );

        // Every session opens once, prefills once with its planned
        // prompt, decodes exactly its planned budget, and closes once.
        let plans = mix.plans();
        let mut opened = vec![0usize; plans.len()];
        let mut prefilled = vec![0usize; plans.len()];
        let mut decoded = vec![0usize; plans.len()];
        let mut closed = vec![0usize; plans.len()];
        let mut live = 0usize;
        let mut max_live = 0usize;
        for e in mix.events() {
            match e {
                TrafficEvent::Open { session } => {
                    opened[session] += 1;
                    live += 1;
                    max_live = max_live.max(live);
                }
                TrafficEvent::Prefill { session, tokens } => {
                    prefilled[session] += tokens;
                    assert_eq!(tokens, plans[session].prompt);
                }
                TrafficEvent::Decode { session } => decoded[session] += 1,
                TrafficEvent::Close { session } => {
                    closed[session] += 1;
                    live -= 1;
                }
            }
        }
        assert!(opened.iter().all(|&n| n == 1));
        assert!(closed.iter().all(|&n| n == 1));
        assert!(max_live <= mix.live, "admission cap violated");
        for p in &plans {
            assert_eq!(decoded[p.session], p.decode, "session {}", p.session);
        }
        let total: usize = plans.iter().map(|p| p.prompt + p.decode).sum();
        assert_eq!(total, mix.total_tokens());
    }

    #[test]
    fn traffic_mixes_are_ragged_and_in_range() {
        for mix in [
            TrafficMix::chat(64, 16, 3),
            TrafficMix::summarize(64, 16, 3),
        ] {
            let plans = mix.plans();
            for p in &plans {
                assert!(p.prompt >= mix.prompt_tokens.0 && p.prompt <= mix.prompt_tokens.1);
                assert!(p.decode >= mix.decode_tokens.0 && p.decode <= mix.decode_tokens.1);
            }
            // Ragged: not all sessions identical.
            assert!(
                plans.iter().any(|p| p.prompt != plans[0].prompt),
                "prompts not ragged"
            );
            assert!(
                plans.iter().any(|p| p.decode != plans[0].decode),
                "decodes not ragged"
            );
        }
    }

    #[test]
    fn request_counts_drop_under_compression() {
        let e = engine();
        let wl = DecodeWorkload::new(ModelSpec::llama_13b(), 16, 2048);
        let r16 = wl.memory_requests(&e, &ExecScheme::fp16_trt());
        let re = wl.memory_requests(&e, &ExecScheme::ecco());
        let ratio = r16 as f64 / re as f64;
        assert!(ratio > 3.0, "request ratio {ratio}");
    }
}
