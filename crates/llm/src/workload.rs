//! Decode-step workloads: model → kernel stream.

use ecco_sim::{ExecScheme, Kernel, SimEngine, StepTime};
use serde::{Deserialize, Serialize};

use crate::models::ModelSpec;

/// One auto-regressive decode step of `batch` sequences at context length
/// `seq`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DecodeWorkload {
    /// The model being served.
    pub model: ModelSpec,
    /// Sequences decoded together.
    pub batch: usize,
    /// Current context length (KV entries per sequence).
    pub seq: usize,
}

impl DecodeWorkload {
    /// Creates a workload.
    ///
    /// # Panics
    ///
    /// Panics if `batch` or `seq` is zero.
    pub fn new(model: ModelSpec, batch: usize, seq: usize) -> DecodeWorkload {
        assert!(batch > 0 && seq > 0, "batch and seq must be positive");
        DecodeWorkload { model, batch, seq }
    }

    /// Expands the decode step into the kernel stream TensorRT-LLM-style
    /// runtimes launch: per layer a fused QKV projection, rotary +
    /// attention, output projection, fused gate/up, SiLU·mul, down
    /// projection, two norms — plus any scheme-specific extra kernels
    /// (QuaRot's online rotations), plus the final norm and LM head.
    pub fn kernels(&self, scheme: &ExecScheme) -> Vec<Kernel> {
        let m = &self.model;
        let b = self.batch;
        let h = m.hidden;
        let kvd = m.kv_dim();
        let mut out = Vec::with_capacity(m.layers * (9 + scheme.extra_kernels_per_layer) + 2);
        for _ in 0..m.layers {
            out.push(Kernel::elementwise(b * h)); // input RMSNorm
            out.push(Kernel::gemm(b, h + 2 * kvd, h)); // fused QKV
            out.push(Kernel::elementwise(b * (h + kvd))); // rotary embed
            out.push(Kernel::AttentionDecode {
                batch: b,
                heads: m.heads,
                kv_heads: m.kv_heads,
                head_dim: m.head_dim,
                seq: self.seq,
            });
            out.push(Kernel::gemm(b, h, h)); // O projection
            out.push(Kernel::elementwise(b * h)); // post-attn RMSNorm
            out.push(Kernel::gemm(b, 2 * m.ffn, h)); // fused gate+up
            out.push(Kernel::elementwise(b * m.ffn)); // SiLU · mul
            out.push(Kernel::gemm(b, h, m.ffn)); // down projection
            for _ in 0..scheme.extra_kernels_per_layer {
                out.push(Kernel::Elementwise {
                    elems: b * h,
                    flops_per_elem: scheme.extra_flops_per_act_elem,
                });
            }
        }
        out.push(Kernel::elementwise(b * h)); // final norm
        out.push(Kernel::gemm(b, m.vocab, h)); // LM head
        out
    }

    /// Times one decode step under `scheme`.
    pub fn step_time(&self, engine: &SimEngine, scheme: &ExecScheme) -> StepTime {
        engine.step_time(&self.kernels(scheme), scheme)
    }

    /// Total sector-level memory requests of one decode step.
    pub fn memory_requests(&self, engine: &SimEngine, scheme: &ExecScheme) -> u64 {
        self.kernels(scheme)
            .iter()
            .map(|k| engine.memory_requests(k, scheme))
            .sum()
    }
}

/// One prefill pass over a `batch × prompt_len` prompt.
///
/// The paper omits prefill from its evaluation because it is
/// compute-bound, runs once, and is a negligible share of long decodes;
/// this workload exists to *validate* that claim in the simulator (see
/// `prefill_is_compute_bound`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PrefillWorkload {
    /// The model being served.
    pub model: ModelSpec,
    /// Prompts processed together.
    pub batch: usize,
    /// Prompt length in tokens.
    pub prompt_len: usize,
}

impl PrefillWorkload {
    /// Creates a prefill workload.
    ///
    /// # Panics
    ///
    /// Panics if `batch` or `prompt_len` is zero.
    pub fn new(model: ModelSpec, batch: usize, prompt_len: usize) -> PrefillWorkload {
        assert!(
            batch > 0 && prompt_len > 0,
            "batch and prompt must be positive"
        );
        PrefillWorkload {
            model,
            batch,
            prompt_len,
        }
    }

    /// The prefill kernel stream: the same projections as decode but with
    /// `m = batch × prompt_len` rows, plus causal self-attention over the
    /// prompt (modeled as a decode-attention kernel at the mean causal
    /// context `prompt_len / 2` per token).
    pub fn kernels(&self, scheme: &ExecScheme) -> Vec<Kernel> {
        let m = &self.model;
        let rows = self.batch * self.prompt_len;
        let h = m.hidden;
        let kvd = m.kv_dim();
        let mut out = Vec::with_capacity(m.layers * 9 + 2);
        for _ in 0..m.layers {
            out.push(Kernel::elementwise(rows * h));
            out.push(Kernel::gemm(rows, h + 2 * kvd, h));
            out.push(Kernel::elementwise(rows * (h + kvd)));
            out.push(Kernel::AttentionPrefill {
                batch: self.batch,
                heads: m.heads,
                kv_heads: m.kv_heads,
                head_dim: m.head_dim,
                prompt: self.prompt_len,
            });
            out.push(Kernel::gemm(rows, h, h));
            out.push(Kernel::elementwise(rows * h));
            out.push(Kernel::gemm(rows, 2 * m.ffn, h));
            out.push(Kernel::elementwise(rows * m.ffn));
            out.push(Kernel::gemm(rows, h, m.ffn));
            for _ in 0..scheme.extra_kernels_per_layer {
                out.push(Kernel::Elementwise {
                    elems: rows * h,
                    flops_per_elem: scheme.extra_flops_per_act_elem,
                });
            }
        }
        out.push(Kernel::elementwise(rows * h));
        out.push(Kernel::gemm(rows, m.vocab, h));
        out
    }

    /// Times the prefill pass under `scheme`.
    pub fn step_time(&self, engine: &SimEngine, scheme: &ExecScheme) -> StepTime {
        engine.step_time(&self.kernels(scheme), scheme)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecco_sim::GpuSpec;

    fn engine() -> SimEngine {
        SimEngine::new(GpuSpec::a100())
    }

    #[test]
    fn kernel_count_scales_with_layers() {
        let wl = DecodeWorkload::new(ModelSpec::llama_7b(), 1, 128);
        let n = wl.kernels(&ExecScheme::fp16_trt()).len();
        assert_eq!(n, 32 * 9 + 2);
        let nq = wl.kernels(&ExecScheme::quarot()).len();
        assert_eq!(nq, 32 * (9 + 6) + 2);
    }

    #[test]
    fn ecco_speedup_in_paper_range() {
        // Figure 11a regime: LLaMA-13B, seq 2048. The paper reports
        // 2.6–3.2x vs TensorRT FP16 across batch sizes.
        let e = engine();
        for batch in [1, 8, 64] {
            let wl = DecodeWorkload::new(ModelSpec::llama_13b(), batch, 2048);
            let fp16 = wl.step_time(&e, &ExecScheme::fp16_trt()).total;
            let ecco = wl.step_time(&e, &ExecScheme::ecco()).total;
            let s = fp16 / ecco;
            assert!(s > 2.0 && s < 4.5, "batch {batch}: speedup {s}");
        }
    }

    #[test]
    fn gqa_models_gain_less() {
        // Figure 11c: Mistral-7B (GQA) shows a smaller Ecco speedup than
        // the size-comparable LLaMA-7B (MHA) at long context.
        let e = engine();
        let mha = DecodeWorkload::new(ModelSpec::llama_7b(), 32, 4096);
        let gqa = DecodeWorkload::new(ModelSpec::mistral_7b(), 32, 4096);
        let s_mha = mha.step_time(&e, &ExecScheme::fp16_trt()).total
            / mha.step_time(&e, &ExecScheme::ecco()).total;
        let s_gqa = gqa.step_time(&e, &ExecScheme::fp16_trt()).total
            / gqa.step_time(&e, &ExecScheme::ecco()).total;
        assert!(
            s_gqa < s_mha,
            "GQA speedup {s_gqa} must trail MHA speedup {s_mha}"
        );
    }

    #[test]
    fn longer_context_grows_attention_share() {
        let e = engine();
        let short = DecodeWorkload::new(ModelSpec::llama_13b(), 8, 128)
            .step_time(&e, &ExecScheme::fp16_trt());
        let long = DecodeWorkload::new(ModelSpec::llama_13b(), 8, 4096)
            .step_time(&e, &ExecScheme::fp16_trt());
        let share_short = short.attention / short.total;
        let share_long = long.attention / long.total;
        assert!(share_long > share_short);
    }

    #[test]
    fn prefill_is_compute_bound() {
        // The paper's justification for omitting prefill: at prompt 1024,
        // compression buys little because the GEMMs are compute-bound.
        let e = engine();
        let pf = PrefillWorkload::new(ModelSpec::llama_13b(), 4, 1024);
        let fp16 = pf.step_time(&e, &ExecScheme::fp16_trt()).total;
        let ecco = pf.step_time(&e, &ExecScheme::ecco()).total;
        let speedup = fp16 / ecco;
        assert!(
            speedup < 1.5,
            "prefill speedup {speedup} should be small (compute-bound)"
        );

        // And prefill runs once while decode runs per token: for a
        // 512-token generation its share of total time is minor.
        let decode = DecodeWorkload::new(ModelSpec::llama_13b(), 4, 1024)
            .step_time(&e, &ExecScheme::fp16_trt())
            .total;
        assert!(fp16 < decode * 512.0 * 0.25, "prefill is a minor share");
    }

    #[test]
    fn request_counts_drop_under_compression() {
        let e = engine();
        let wl = DecodeWorkload::new(ModelSpec::llama_13b(), 16, 2048);
        let r16 = wl.memory_requests(&e, &ExecScheme::fp16_trt());
        let re = wl.memory_requests(&e, &ExecScheme::ecco());
        let ratio = r16 as f64 / re as f64;
        assert!(ratio > 3.0, "request ratio {ratio}");
    }
}
