//! Weighted k-means clustering for the Ecco compression pipeline.
//!
//! The paper uses k-means three times (Figure 4):
//!
//! 1. **per-group** activation-aware 1-D k-means with 15 clusters over the
//!    127 non-absmax values of each group (step 3),
//! 2. **pattern sharing**: vector k-means with `S` clusters over all group
//!    patterns, producing the shared k-means patterns (step 4),
//! 3. **codebook sharing**: vector k-means with `H` clusters over symbol
//!    frequency histograms, producing representative distributions that are
//!    turned into Huffman codebooks (step 6).
//!
//! [`fit_scalar`] covers (1) and [`fit_vectors`] covers (2) and (3). Both
//! are deterministic given a seed (k-means++ initialization over a seeded
//! [`rand::rngs::StdRng`]), which keeps every experiment reproducible.
//!
//! Calibration runs thousands of *independent* per-group fits, so the hot
//! entry point is [`fit_scalar_batch`]: it shards a slice of
//! [`ScalarJob`]s across the rayon pool and collects results in job order.
//! Each job carries its own seed and re-seeds its own RNG, so the batch is
//! bit-identical to running `jobs[i].fit(cfg)` in a sequential loop — the
//! determinism guarantee `ecco-core`'s parallel calibration is built on.
//!
//! # Examples
//!
//! ```
//! use ecco_kmeans::{fit_scalar, KmeansConfig};
//!
//! let points: Vec<f32> = (0..100).map(|i| if i < 50 { 0.1 } else { 0.9 }).collect();
//! let fit = fit_scalar(&points, None, &KmeansConfig::with_k(2));
//! assert_eq!(fit.centroids.len(), 2);
//! assert!(fit.centroids[0] < 0.2 && fit.centroids[1] > 0.8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Configuration shared by the scalar and vector fitters.
#[derive(Clone, Debug, PartialEq)]
pub struct KmeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Relative inertia improvement below which iteration stops.
    pub tol: f64,
    /// RNG seed for k-means++ initialization.
    pub seed: u64,
}

impl KmeansConfig {
    /// A sensible default configuration for `k` clusters.
    pub fn with_k(k: usize) -> KmeansConfig {
        KmeansConfig {
            k,
            max_iters: 30,
            tol: 1e-6,
            seed: 0x0ECC0,
        }
    }

    /// Returns a copy with a different seed.
    pub fn seeded(mut self, seed: u64) -> KmeansConfig {
        self.seed = seed;
        self
    }
}

/// Result of a 1-D fit: centroids are **sorted ascending**.
#[derive(Clone, Debug, PartialEq)]
pub struct ScalarFit {
    /// Sorted cluster centres.
    pub centroids: Vec<f32>,
    /// Weighted sum of squared distances to assigned centroids.
    pub inertia: f64,
}

/// Result of a vector fit.
#[derive(Clone, Debug, PartialEq)]
pub struct VectorFit {
    /// Cluster centres (unordered).
    pub centroids: Vec<Vec<f32>>,
    /// Cluster index for every input point.
    pub assignments: Vec<usize>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
}

/// Weighted 1-D k-means (Lloyd) with k-means++ initialization.
///
/// `weights` biases both initialization and centroid updates — the paper's
/// "activation-aware" clustering weights weight values by the activation
/// magnitude they multiply. `None` means uniform weights.
///
/// The returned centroids are sorted ascending and always contain exactly
/// `cfg.k` entries; when the input has fewer distinct values than `k`,
/// surplus centroids duplicate existing ones (harmless for quantization).
///
/// # Panics
///
/// Panics if `points` is empty, `cfg.k == 0`, or `weights` has mismatched
/// length or negative entries.
pub fn fit_scalar(points: &[f32], weights: Option<&[f32]>, cfg: &KmeansConfig) -> ScalarFit {
    assert!(!points.is_empty(), "cannot cluster zero points");
    assert!(cfg.k > 0, "need at least one cluster");
    if let Some(w) = weights {
        assert_eq!(w.len(), points.len(), "weights length mismatch");
        assert!(w.iter().all(|&x| x >= 0.0), "weights must be non-negative");
    }
    let uniform = vec![1.0f32; points.len()];
    let w = weights.unwrap_or(&uniform);

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut centroids = plus_plus_init_scalar(points, w, cfg.k, &mut rng);
    centroids.sort_by(f32::total_cmp);

    let mut assignments = vec![0usize; points.len()];
    let mut last_inertia = f64::INFINITY;
    for _ in 0..cfg.max_iters {
        // Assignment against sorted centroids via midpoint search.
        for (i, &p) in points.iter().enumerate() {
            assignments[i] = nearest_sorted(&centroids, p);
        }
        // Weighted centroid update.
        let mut sums = vec![0f64; cfg.k];
        let mut wsum = vec![0f64; cfg.k];
        for (i, &p) in points.iter().enumerate() {
            sums[assignments[i]] += p as f64 * w[i] as f64;
            wsum[assignments[i]] += w[i] as f64;
        }
        for c in 0..cfg.k {
            if wsum[c] > 0.0 {
                centroids[c] = (sums[c] / wsum[c]) as f32;
            } else {
                // Empty cluster: re-seed at the point with the largest error.
                centroids[c] = farthest_point_scalar(points, &centroids);
            }
        }
        centroids.sort_by(f32::total_cmp);
        let inertia = scalar_inertia(points, w, &centroids);
        let converged =
            last_inertia.is_finite() && last_inertia - inertia <= cfg.tol * last_inertia.abs();
        last_inertia = inertia;
        if converged {
            break;
        }
    }
    ScalarFit {
        inertia: scalar_inertia(points, w, &centroids),
        centroids,
    }
}

/// One independent scalar fit in a [`fit_scalar_batch`] call: the points
/// to cluster, optional per-point weights, and the per-job RNG seed
/// (Ecco derives it from the calibration seed and the group index).
#[derive(Clone, Copy, Debug)]
pub struct ScalarJob<'a> {
    /// Points to cluster.
    pub points: &'a [f32],
    /// Optional non-negative per-point weights (`None` = uniform).
    pub weights: Option<&'a [f32]>,
    /// Seed for this job's k-means++ initialization.
    pub seed: u64,
}

impl ScalarJob<'_> {
    /// Runs this job alone — the sequential unit [`fit_scalar_batch`]
    /// shards across the pool.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`fit_scalar`].
    pub fn fit(&self, cfg: &KmeansConfig) -> ScalarFit {
        fit_scalar(self.points, self.weights, &cfg.clone().seeded(self.seed))
    }
}

/// Fits every job across the rayon pool, preserving job order.
///
/// The result at index `i` is **bit-identical** to `jobs[i].fit(cfg)`:
/// every job re-seeds its own RNG from `ScalarJob::seed`, so no state
/// crosses job boundaries and sharding cannot change any result. This is
/// the primitive behind `ecco-core`'s parallel calibration (paper step 3:
/// one 15-cluster fit per sampled group).
///
/// # Panics
///
/// Panics if any job violates the [`fit_scalar`] preconditions.
pub fn fit_scalar_batch(jobs: &[ScalarJob<'_>], cfg: &KmeansConfig) -> Vec<ScalarFit> {
    jobs.par_iter().map(|job| job.fit(cfg)).collect()
}

/// Fills `out` with the decision boundaries of a **sorted** centroid
/// slice: `out[j] = (centroids[j] + centroids[j+1]) * 0.5`.
///
/// Because the centroids are sorted, the midpoints are non-decreasing, so
/// the boundary table can be consumed by a monotone merge (see
/// [`nearest_by_midpoints`]). Every nearest-centroid primitive in the
/// workspace computes midpoints with this exact expression — the codec's
/// boundary tables, [`nearest_sorted`] and the encoder's fused sweep must
/// agree bit-for-bit on where each boundary sits.
///
/// # Panics
///
/// Panics if `out.len() + 1 != centroids.len()`.
#[inline]
pub fn fill_midpoints(centroids: &[f32], out: &mut [f32]) {
    assert_eq!(
        out.len() + 1,
        centroids.len(),
        "need one midpoint per centroid gap"
    );
    for (o, w) in out.iter_mut().zip(centroids.windows(2)) {
        *o = (w[0] + w[1]) * 0.5;
    }
}

/// Index of the nearest centroid given its precomputed (non-decreasing)
/// midpoint boundaries: the count of midpoints strictly below `x`.
///
/// This is the branch-free form of [`nearest_sorted`] — same boundary
/// rule, but over a table built once with [`fill_midpoints`] instead of
/// midpoints recomputed per probe. The two agree for every non-NaN `x`;
/// NaN probes return 0 in both.
#[inline]
pub fn nearest_by_midpoints(mids: &[f32], x: f32) -> usize {
    // `mids` is non-decreasing, so `x > m` holds on a prefix and the sum
    // equals the boundary-crossing count; summing all entries keeps the
    // loop branch-free.
    mids.iter().map(|&m| usize::from(x > m)).sum()
}

/// Index of the nearest centroid in a **sorted** centroid slice, by the
/// pinned midpoint-boundary rule: `x` maps to centroid `i` where `i` is
/// the number of midpoints `(c[j] + c[j+1]) * 0.5` strictly below `x`.
///
/// The rule makes every corner case deterministic (regression-pinned in
/// this crate's tests):
///
/// * a probe **exactly on a midpoint** resolves to the *lower* centroid,
/// * **duplicate centroids** (k-means pads surplus clusters by
///   duplication): a probe at or below the duplicated value resolves to
///   the *lowest* index among them; a probe strictly above crosses every
///   degenerate midpoint and resolves to the *highest* — the centroid
///   value is identical either way,
/// * a **NaN** probe compares false against every midpoint and maps to
///   centroid 0.
///
/// This is the software equivalent of the decoder's value-mapper and the
/// scalar reference for the codec's precomputed boundary tables.
///
/// # Panics
///
/// Panics (in debug builds) if `centroids` is empty.
#[inline]
pub fn nearest_sorted(centroids: &[f32], x: f32) -> usize {
    debug_assert!(!centroids.is_empty());
    let mut i = 0usize;
    for w in centroids.windows(2) {
        if x > (w[0] + w[1]) * 0.5 {
            i += 1;
        } else {
            // Midpoints of a sorted slice are non-decreasing: once one is
            // >= x, all later ones are too.
            break;
        }
    }
    i
}

fn scalar_inertia(points: &[f32], w: &[f32], centroids: &[f32]) -> f64 {
    points
        .iter()
        .zip(w)
        .map(|(&p, &wi)| {
            let c = centroids[nearest_sorted(centroids, p)];
            let d = (p - c) as f64;
            d * d * wi as f64
        })
        .sum()
}

fn farthest_point_scalar(points: &[f32], centroids: &[f32]) -> f32 {
    let mut best = points[0];
    let mut best_d = -1.0f64;
    for &p in points {
        let c = centroids[nearest_sorted(centroids, p)];
        let d = ((p - c) as f64).powi(2);
        if d > best_d {
            best_d = d;
            best = p;
        }
    }
    best
}

fn plus_plus_init_scalar(points: &[f32], w: &[f32], k: usize, rng: &mut StdRng) -> Vec<f32> {
    let mut centroids = Vec::with_capacity(k);
    let total_w: f64 = w.iter().map(|&x| x as f64).sum();
    let first = if total_w > 0.0 {
        weighted_pick(w, total_w, rng)
    } else {
        0
    };
    centroids.push(points[first]);
    let mut d2: Vec<f64> = points
        .iter()
        .map(|&p| ((p - centroids[0]) as f64).powi(2))
        .collect();
    while centroids.len() < k {
        let scores: Vec<f64> = d2.iter().zip(w).map(|(&d, &wi)| d * wi as f64).collect();
        let total: f64 = scores.iter().sum();
        let idx = if total > 0.0 {
            weighted_pick_f64(&scores, total, rng)
        } else {
            rng.gen_range(0..points.len())
        };
        let c = points[idx];
        centroids.push(c);
        for (i, &p) in points.iter().enumerate() {
            let d = ((p - c) as f64).powi(2);
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centroids
}

fn weighted_pick(w: &[f32], total: f64, rng: &mut StdRng) -> usize {
    let mut t = rng.gen_range(0.0..total);
    for (i, &wi) in w.iter().enumerate() {
        t -= wi as f64;
        if t <= 0.0 {
            return i;
        }
    }
    w.len() - 1
}

fn weighted_pick_f64(w: &[f64], total: f64, rng: &mut StdRng) -> usize {
    let mut t = rng.gen_range(0.0..total);
    for (i, &wi) in w.iter().enumerate() {
        t -= wi;
        if t <= 0.0 {
            return i;
        }
    }
    w.len() - 1
}

/// Euclidean k-means over fixed-dimension vectors with k-means++ init.
///
/// Used for shared-pattern clustering (15-dim patterns → `S` clusters) and
/// Huffman-codebook clustering (16-dim frequency histograms → `H`
/// clusters).
///
/// # Panics
///
/// Panics if `points` is empty, dimensions are inconsistent, or
/// `cfg.k == 0`.
pub fn fit_vectors(points: &[Vec<f32>], cfg: &KmeansConfig) -> VectorFit {
    assert!(!points.is_empty(), "cannot cluster zero points");
    assert!(cfg.k > 0, "need at least one cluster");
    let dim = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == dim),
        "inconsistent dimensions"
    );

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut centroids = plus_plus_init_vec(points, cfg.k, &mut rng);
    let mut assignments = vec![0usize; points.len()];
    let mut last_inertia = f64::INFINITY;

    for _ in 0..cfg.max_iters {
        for (i, p) in points.iter().enumerate() {
            assignments[i] = nearest_vec(&centroids, p).0;
        }
        let mut sums = vec![vec![0f64; dim]; cfg.k];
        let mut counts = vec![0usize; cfg.k];
        for (i, p) in points.iter().enumerate() {
            counts[assignments[i]] += 1;
            for (s, &v) in sums[assignments[i]].iter_mut().zip(p) {
                *s += v as f64;
            }
        }
        for c in 0..cfg.k {
            if counts[c] > 0 {
                for (d, s) in centroids[c].iter_mut().zip(&sums[c]) {
                    *d = (*s / counts[c] as f64) as f32;
                }
            } else {
                // Re-seed an empty cluster at the worst-served point.
                let far = points
                    .iter()
                    .max_by(|a, b| {
                        nearest_vec(&centroids, a)
                            .1
                            .total_cmp(&nearest_vec(&centroids, b).1)
                    })
                    .expect("non-empty");
                centroids[c] = far.clone();
            }
        }
        let inertia: f64 = points.iter().map(|p| nearest_vec(&centroids, p).1).sum();
        let converged =
            last_inertia.is_finite() && last_inertia - inertia <= cfg.tol * last_inertia.abs();
        last_inertia = inertia;
        if converged {
            break;
        }
    }

    for (i, p) in points.iter().enumerate() {
        assignments[i] = nearest_vec(&centroids, p).0;
    }
    let inertia: f64 = points.iter().map(|p| nearest_vec(&centroids, p).1).sum();
    VectorFit {
        centroids,
        assignments,
        inertia,
    }
}

/// Returns `(index, squared_distance)` of the nearest centroid to `p`.
fn nearest_vec(centroids: &[Vec<f32>], p: &[f32]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d: f64 = c
            .iter()
            .zip(p)
            .map(|(&a, &b)| ((a - b) as f64).powi(2))
            .sum();
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

fn plus_plus_init_vec(points: &[Vec<f32>], k: usize, rng: &mut StdRng) -> Vec<Vec<f32>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    let mut d2: Vec<f64> = points
        .iter()
        .map(|p| nearest_vec(&centroids, p).1)
        .collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let idx = if total > 0.0 {
            weighted_pick_f64(&d2, total, rng)
        } else {
            rng.gen_range(0..points.len())
        };
        centroids.push(points[idx].clone());
        for (i, p) in points.iter().enumerate() {
            let d = nearest_vec(&centroids[centroids.len() - 1..], p).1;
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn two_well_separated_clusters() {
        let mut pts = vec![0.0f32; 40];
        pts.extend(vec![10.0f32; 60]);
        let fit = fit_scalar(&pts, None, &KmeansConfig::with_k(2));
        assert!((fit.centroids[0] - 0.0).abs() < 1e-4);
        assert!((fit.centroids[1] - 10.0).abs() < 1e-4);
        assert!(fit.inertia < 1e-6);
    }

    #[test]
    fn weights_pull_centroids() {
        // Two points; weight one of them 99x: the single centroid must land
        // at the weighted mean.
        let pts = [0.0f32, 1.0];
        let w = [99.0f32, 1.0];
        let fit = fit_scalar(&pts, Some(&w), &KmeansConfig::with_k(1));
        assert!(
            (fit.centroids[0] - 0.01).abs() < 1e-4,
            "{:?}",
            fit.centroids
        );
    }

    #[test]
    fn k_larger_than_unique_points_is_safe() {
        let pts = [1.0f32, 1.0, 1.0];
        let fit = fit_scalar(&pts, None, &KmeansConfig::with_k(15));
        assert_eq!(fit.centroids.len(), 15);
        assert!(fit.inertia < 1e-9);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let pts: Vec<f32> = (0..127).map(|i| ((i * 37) % 101) as f32 / 101.0).collect();
        let a = fit_scalar(&pts, None, &KmeansConfig::with_k(15));
        let b = fit_scalar(&pts, None, &KmeansConfig::with_k(15));
        assert_eq!(a, b);
    }

    #[test]
    fn batch_fit_bit_identical_to_sequential() {
        let groups: Vec<Vec<f32>> = (0..48)
            .map(|g| {
                (0..127)
                    .map(|i| (((i * 31 + g * 7) % 113) as f32 / 56.5) - 1.0)
                    .collect()
            })
            .collect();
        let weights: Vec<Vec<f32>> = groups
            .iter()
            .map(|g| g.iter().map(|v| v * v + 0.1).collect())
            .collect();
        let cfg = KmeansConfig::with_k(15);
        let jobs: Vec<ScalarJob<'_>> = groups
            .iter()
            .zip(&weights)
            .enumerate()
            .map(|(i, (g, w))| ScalarJob {
                points: g,
                weights: if i % 2 == 0 { Some(w) } else { None },
                seed: 0xECC0 + i as u64,
            })
            .collect();
        let batch = fit_scalar_batch(&jobs, &cfg);
        for (job, fit) in jobs.iter().zip(&batch) {
            assert_eq!(fit, &job.fit(&cfg), "batch result diverged from solo fit");
        }
    }

    #[test]
    fn nearest_sorted_picks_closest() {
        let cs = [-1.0f32, 0.0, 0.5, 2.0];
        assert_eq!(nearest_sorted(&cs, -5.0), 0);
        assert_eq!(nearest_sorted(&cs, 5.0), 3);
        assert_eq!(nearest_sorted(&cs, 0.2), 1);
        assert_eq!(nearest_sorted(&cs, 0.3), 2);
        // Exact midpoint ties to the lower centroid.
        assert_eq!(nearest_sorted(&cs, 0.25), 1);
        assert_eq!(nearest_sorted(&cs, 0.5), 2);
    }

    #[test]
    fn nearest_sorted_pins_ties_duplicates_and_nan() {
        // Exact-midpoint ties resolve to the LOWER centroid — this is the
        // boundary rule the codec's fused encoder sweep relies on.
        let cs = [-1.0f32, 0.0, 1.0];
        assert_eq!(nearest_sorted(&cs, -0.5), 0);
        assert_eq!(nearest_sorted(&cs, 0.5), 1);
        // Duplicate centroids (k-means pads surplus clusters this way):
        // an exact hit — or anything at/below them — resolves to the
        // LOWEST index among the duplicates; a value strictly above them
        // crosses every degenerate midpoint and resolves to the HIGHEST.
        // The reconstructed centroid value is identical either way.
        let dup = [0.25f32, 0.25, 0.25, 0.75];
        assert_eq!(nearest_sorted(&dup, 0.25), 0);
        assert_eq!(nearest_sorted(&dup, 0.2), 0);
        assert_eq!(nearest_sorted(&dup, 0.3), 2);
        assert_eq!(nearest_sorted(&dup, 0.6), 3);
        let all_same = [0.5f32; 15];
        assert_eq!(nearest_sorted(&all_same, 0.5), 0);
        assert_eq!(nearest_sorted(&all_same, 9.0), 14);
        assert_eq!(nearest_sorted(&all_same, -9.0), 0);
        // NaN probes compare false against every midpoint: symbol 0.
        assert_eq!(nearest_sorted(&cs, f32::NAN), 0);
        assert_eq!(nearest_by_midpoints(&[-0.5, 0.5], f32::NAN), 0);
    }

    #[test]
    fn midpoint_table_matches_scalar_rule() {
        let cs: Vec<f32> = (0..15).map(|i| ((i as f32) / 7.0 - 1.0).powi(3)).collect();
        let mut mids = vec![0f32; 14];
        fill_midpoints(&cs, &mut mids);
        assert!(mids.windows(2).all(|w| w[0] <= w[1]), "mids non-decreasing");
        for i in -30..=30 {
            let x = i as f32 * 0.05;
            assert_eq!(nearest_by_midpoints(&mids, x), nearest_sorted(&cs, x));
        }
        // Probes sitting exactly on each boundary tie to the lower side.
        for (j, &m) in mids.iter().enumerate() {
            let i = nearest_by_midpoints(&mids, m);
            assert_eq!(i, nearest_sorted(&cs, m));
            assert!(i <= j, "midpoint {j} resolved upward to {i}");
        }
    }

    #[test]
    fn vector_clusters_separate() {
        let mut pts: Vec<Vec<f32>> = Vec::new();
        for i in 0..30 {
            let v = i as f32 * 1e-3;
            pts.push(vec![v, v, 1.0]);
            pts.push(vec![1.0 + v, 1.0 + v, -1.0]);
        }
        let fit = fit_vectors(&pts, &KmeansConfig::with_k(2));
        assert_eq!(fit.centroids.len(), 2);
        // Every pair drawn from the same generator half must co-cluster.
        for i in (0..pts.len()).step_by(2) {
            assert_eq!(fit.assignments[i], fit.assignments[0]);
            assert_eq!(fit.assignments[i + 1], fit.assignments[1]);
        }
        assert_ne!(fit.assignments[0], fit.assignments[1]);
    }

    #[test]
    fn fifteen_clusters_over_group_sized_input() {
        // The exact shape used by the codec: 127 values, 15 clusters.
        let pts: Vec<f32> = (0..127)
            .map(|i| ((i as f32 / 127.0) * 2.0 - 1.0).powi(3))
            .collect();
        let fit = fit_scalar(&pts, None, &KmeansConfig::with_k(15));
        assert_eq!(fit.centroids.len(), 15);
        let mut sorted = fit.centroids.clone();
        sorted.sort_by(f32::total_cmp);
        assert_eq!(fit.centroids, sorted, "centroids must be sorted");
        // Quantization through these centroids must beat uniform 15-level.
        let step = 2.0 / 14.0;
        let uniform: Vec<f32> = (0..15).map(|i| -1.0 + i as f32 * step).collect();
        let km_err: f64 = pts
            .iter()
            .map(|&p| ((p - fit.centroids[nearest_sorted(&fit.centroids, p)]) as f64).powi(2))
            .sum();
        let un_err: f64 = pts
            .iter()
            .map(|&p| ((p - uniform[nearest_sorted(&uniform, p)]) as f64).powi(2))
            .sum();
        assert!(
            km_err <= un_err,
            "k-means ({km_err:.6}) must not lose to uniform ({un_err:.6})"
        );
    }

    proptest! {
        #[test]
        fn centroids_within_data_range(
            pts in prop::collection::vec(-1.0f32..1.0, 8..200),
            k in 1usize..16,
        ) {
            let fit = fit_scalar(&pts, None, &KmeansConfig::with_k(k));
            let lo = pts.iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = pts.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            prop_assert_eq!(fit.centroids.len(), k);
            for &c in &fit.centroids {
                prop_assert!(c >= lo - 1e-6 && c <= hi + 1e-6, "centroid {} outside [{}, {}]", c, lo, hi);
            }
        }

        #[test]
        fn more_clusters_never_hurt(pts in prop::collection::vec(-1.0f32..1.0, 32..128)) {
            let few = fit_scalar(&pts, None, &KmeansConfig::with_k(2));
            let many = fit_scalar(&pts, None, &KmeansConfig::with_k(8));
            // Lloyd is a local optimizer: allow a small slack factor.
            prop_assert!(many.inertia <= few.inertia * 1.05 + 1e-9);
        }

        #[test]
        fn assignments_are_nearest(pts in prop::collection::vec(
            prop::collection::vec(-1.0f32..1.0, 4), 4..64,
        )) {
            let fit = fit_vectors(&pts, &KmeansConfig::with_k(3));
            for (i, p) in pts.iter().enumerate() {
                let (best, _) = super::nearest_vec(&fit.centroids, p);
                prop_assert_eq!(fit.assignments[i], best);
            }
        }
    }
}
