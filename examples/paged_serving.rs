//! Multi-tenant paged serving: a deterministic chat-style traffic mix
//! replayed through the `ecco-serve` paged KV store, with cold pages
//! held compressed and decompressed on read through the shared pool.
//!
//! This is the capacity story of the paper at serving scale — the KV
//! cache dominates the footprint, so keeping cold pages at the codec's
//! fixed 4x is what decides how many sessions one device holds. The
//! demo replays hundreds of ragged sessions against a small hot tier,
//! reads sessions back mid-flight (batched cold decode + promotion),
//! then injects a corrupted cold page and shows the store salvaging it
//! as a located per-page report instead of dying.
//!
//! Run with `cargo run --release --example paged_serving`.

use ecco::bits::Block64;
use ecco::llm::TrafficEvent;
use ecco::prelude::*;
use ecco::serve::{sessions_per_gb, PagedKvStore, RecoveryPolicy, ServeConfig};

fn main() {
    let model = ModelSpec::llama31_8b();
    let mix = TrafficMix::chat(240, 32, 0xECC0);
    let events = mix.events();
    println!(
        "{} | kv_dim {} | {} sessions ({} live cap) | {} tokens, {} trace events",
        model.name,
        model.kv_dim(),
        mix.sessions,
        mix.live,
        mix.total_tokens(),
        events.len(),
    );

    // A rotating buffer of synthetic K rows stands in for the model's
    // KV stream: every append slices whole token rows out of it.
    let (rows, cols) = model.kv_request_shape(512);
    let stream = SynthSpec::for_kind(TensorKind::KCache, rows, cols)
        .seeded(41)
        .generate();
    let kv_dim = cols;
    let mut cursor = 0usize;
    let mut take = |tokens: usize| -> Vec<f32> {
        let mut out = Vec::with_capacity(tokens * kv_dim);
        let data = stream.data();
        for _ in 0..tokens {
            out.extend_from_slice(&data[cursor * kv_dim..(cursor + 1) * kv_dim]);
            cursor = (cursor + 1) % rows;
        }
        out
    };

    let codec = KvCodec::calibrate(
        &[&stream],
        &EccoConfig {
            max_calibration_groups: 512,
            ..EccoConfig::default()
        },
    );
    let cfg = ServeConfig {
        page_tokens: 16,
        hot_capacity_pages: 96, // ~3 MiB hot tier: far below the trace's working set
        ..ServeConfig::default()
    };
    let mut store = PagedKvStore::new(&model, codec, cfg);

    // Replay: session indices from the trace map to store handles.
    let mut handles = vec![None; mix.sessions];
    let mut scratch = Vec::new();
    let mut peak = (0usize, 0usize, 0usize); // (live, paged bytes, fp16 bytes)
    let t0 = std::time::Instant::now();
    for (i, ev) in events.iter().enumerate() {
        match *ev {
            TrafficEvent::Open { session } => handles[session] = Some(store.open_session()),
            TrafficEvent::Prefill { session, tokens } => {
                let sid = handles[session].expect("opened");
                store.append(sid, &take(tokens)).expect("aligned burst");
            }
            TrafficEvent::Decode { session } => {
                let sid = handles[session].expect("opened");
                store.append(sid, &take(1)).expect("aligned row");
                // Every 64th turn the session re-reads its whole cache
                // (speculation / beam rewind stand-in): cold pages come
                // back through one batched pool decode.
                if i % 64 == 0 {
                    scratch.clear();
                    store
                        .read_session_into(sid, &mut scratch)
                        .expect("healthy read");
                }
            }
            TrafficEvent::Close { session } => {
                store
                    .close_session(handles[session].take().expect("opened"))
                    .unwrap();
            }
        }
        if i % 256 == 0 {
            let rb = store.resident_bytes();
            if store.fp16_bytes() > peak.2 {
                peak = (store.live_sessions(), rb.total(), store.fp16_bytes());
            }
        }
    }
    let wall = t0.elapsed();

    let m = store.metrics();
    let hot = m.hot_latency();
    let cold = m.cold_latency();
    println!(
        "replayed in {:.2} s | hot {}/{} pages resident | {} evictions \
         ({} recompressed, {} clean drops)",
        wall.as_secs_f64(),
        store.hot_pages(),
        store.config().hot_capacity_pages,
        m.evictions,
        m.recompressions,
        m.clean_drops,
    );
    println!(
        "page reads: {} hot (p50 {:.1} us, p99 {:.1} us) | {} cold \
         (p50 {:.1} us, p99 {:.1} us)",
        m.hot_hits, hot.p50_us, hot.p99_us, m.cold_reads, cold.p50_us, cold.p99_us,
    );
    println!(
        "peak working set: {} live sessions | paged {:.1} MB vs FP16 {:.1} MB \
         -> {:.0} vs {:.0} sessions/GB",
        peak.0,
        peak.1 as f64 / 1e6,
        peak.2 as f64 / 1e6,
        sessions_per_gb(peak.0, peak.1),
        sessions_per_gb(peak.0, peak.2),
    );

    // Fault demo: rot one cold page and read it under SalvageBlocks.
    let sid = store.open_session();
    store.append(sid, &take(64)).unwrap();
    store.flush_full_pages();
    let ct = store.cold_page(sid, 0).unwrap().expect("flushed cold");
    let mut blocks = ct.blocks().to_vec();
    blocks[3] = Block64::from_bytes([0xFF; 64]);
    let rotted = ct.with_blocks(blocks);
    store.replace_cold_page(sid, 0, rotted).unwrap();
    assert_eq!(store.config().recovery, RecoveryPolicy::SalvageBlocks);
    let mut out = Vec::new();
    let read = store
        .read_page_into(sid, 0, &mut out)
        .expect("salvaged, not fatal");
    let report = read.corruption.expect("corruption located");
    println!(
        "injected bit rot salvaged: {} -> {} value(s) zero-filled, store still serving",
        report,
        report.bad_blocks.len() * store.codec().metadata().group_size,
    );
}
