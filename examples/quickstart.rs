//! Quickstart: compress a weight tensor 4× and inspect the result.
//!
//! Run with `cargo run --release --example quickstart`.

use ecco::prelude::*;
use ecco::tensor::stats::{nmse, sqnr_db};

fn main() {
    // A synthetic LLM weight tensor (substitution S1 in DESIGN.md): the
    // generator reproduces the per-channel scale spread, structured means
    // and heavy tails that drive every decision the codec makes.
    let weights = SynthSpec::for_kind(TensorKind::Weight, 256, 1024)
        .seeded(42)
        .generate();
    println!(
        "tensor: {}x{} FP16 values ({} KiB)",
        weights.rows(),
        weights.cols(),
        weights.len() * 2 / 1024
    );

    // Offline calibration: shared k-means patterns (S=64), Huffman
    // codebooks (H=4 per pattern), the pattern-id code and tensor scale.
    let codec = WeightCodec::calibrate(&[&weights], &EccoConfig::default());
    println!(
        "calibrated: S={} patterns, H={} codebooks/pattern, {} B shared metadata",
        codec.metadata().num_patterns(),
        codec.metadata().books_per_pattern(),
        codec.metadata().metadata_bytes()
    );

    // Compress into fixed 64-byte blocks.
    let (compressed, stats) = codec.compress(&weights);
    println!(
        "compressed: {} blocks x 64 B = {} KiB ({}x vs FP16)",
        compressed.blocks().len(),
        compressed.compressed_bytes() / 1024,
        compressed.ratio_vs_fp16()
    );
    println!(
        "block stats: clip {:.3}%, pad {:.2}%, {:.2} Huffman bits/value",
        stats.clip_ratio() * 100.0,
        stats.pad_ratio() * 100.0,
        stats.avg_data_bits_per_value()
    );

    // Decompress and measure reconstruction quality.
    let restored = codec.decompress(&compressed);
    println!(
        "round trip: NMSE {:.6}, SQNR {:.1} dB",
        nmse(&weights, &restored),
        sqnr_db(&weights, &restored)
    );
}
