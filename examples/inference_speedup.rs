//! End-to-end decode speedup: simulate LLaMA-13B serving under every
//! compared scheme on the A100-class timing model.
//!
//! Run with `cargo run --release --example inference_speedup`.

use ecco::prelude::*;

fn main() {
    let engine = SimEngine::new(GpuSpec::a100());
    let model = ModelSpec::llama_13b();

    println!(
        "{} | {} layers, hidden {}, {} heads | {:.1}B params",
        model.name,
        model.layers,
        model.hidden,
        model.heads,
        model.params() as f64 / 1e9
    );

    for (batch, seq) in [(1usize, 2048usize), (8, 2048), (32, 4096)] {
        let wl = DecodeWorkload::new(model.clone(), batch, seq);
        let fp16 = wl.step_time(&engine, &ExecScheme::fp16_trt());
        println!(
            "\nbatch {batch}, seq {seq}: FP16 decode step {:.2} ms \
             ({} kernels, attention {:.0}%)",
            fp16.total * 1e3,
            fp16.kernels,
            fp16.attention / fp16.total * 100.0
        );
        for scheme in ExecScheme::figure11_set() {
            let t = wl.step_time(&engine, &scheme);
            println!(
                "  {:12} {:8.2} ms   {:.2}x vs FP16",
                scheme.name,
                t.total * 1e3,
                fp16.total / t.total
            );
        }
    }

    // What the decompressor hardware must sustain for this to work:
    let d = DecompressorModel::shipped();
    println!(
        "\ndecompressor: {} cycle pipeline, {:.0}% of L2 bandwidth \
         (20 replicas x 256 B/clk — see `ecco::hw` for the models)",
        d.latency_cycles,
        d.throughput_frac * 100.0
    );

    // And the software pipeline actually moving blocks: compress one
    // weight tensor through the rayon multi-block codec pipeline, then
    // decode it back through the table-driven parallel-decoder model.
    let t = SynthSpec::for_kind(TensorKind::Weight, 128, 1024)
        .seeded(42)
        .generate();
    let cfg = EccoConfig {
        num_patterns: 16,
        max_calibration_groups: 256,
        ..EccoConfig::default()
    };
    let codec = WeightCodec::calibrate(&[&t], &cfg);

    let t0 = std::time::Instant::now();
    let (ct, stats) = codec.compress_parallel(&t);
    let enc = t0.elapsed();
    let meta = codec.metadata().with_scale(ct.tensor_scale());
    let t0 = std::time::Instant::now();
    let decoded = ecco::hw::decode_blocks_parallel(ct.blocks(), &meta).expect("valid blocks");
    let dec = t0.elapsed();
    assert_eq!(decoded.len(), t.len());

    let syms = t.len() as f64;
    println!(
        "\ncodec pipeline ({} threads): {} blocks | encode {:.1} Msym/s | \
         decode {:.1} Msym/s (parallel-decoder model) | NMSE {:.2e}",
        ecco::codec::parallel::worker_threads(),
        ct.blocks().len(),
        syms / enc.as_secs_f64() / 1e6,
        syms / dec.as_secs_f64() / 1e6,
        stats.nmse(),
    );
}
