//! Cold-start loading from an ECCF model container: write a compressed
//! multi-layer model to one random-access file, then reopen it and load
//! — the whole model, and a 25%-of-layers partial set — through the
//! mmap-backed reader and the pooled batch decoder.
//!
//! This is the serving cold-start the container exists for: a weights
//! file one quarter the FP16 size, opened without reading the tensors
//! (the tail directory says where everything lives), with partial loads
//! touching only the pages the requested frames occupy. The pread
//! fallback arm is timed alongside as the no-mmap baseline.
//!
//! Run with `cargo run --release --example model_container`.

use ecco::codec::{CompressedTensor, EccoConfig, WeightCodec};
use ecco::container::{write_model, Container};
use ecco::prelude::*;

fn main() {
    let layers = 12usize;
    let (rows, cols) = (64usize, 1024);

    // A synthetic transformer stack: alternating weight and KV-cache
    // shaped tensors, calibrated once.
    let tensors: Vec<Tensor> = (0..layers)
        .map(|i| {
            SynthSpec::for_kind(TensorKind::Weight, rows, cols)
                .seeded(0xECCF + i as u64)
                .generate()
        })
        .collect();
    let refs: Vec<&Tensor> = tensors.iter().collect();
    let codec = WeightCodec::calibrate(&refs[..2], &EccoConfig::default());

    let pool = PoolBuilder::new().build();
    let compressed: Vec<CompressedTensor> = with_pool(&pool, || {
        codec
            .compress_batch(&refs)
            .into_iter()
            .map(|(ct, _)| ct)
            .collect()
    });

    let names: Vec<String> = (0..layers).map(|i| format!("blk.{i}.ffn.w")).collect();
    let pairs: Vec<(&str, &CompressedTensor)> = names
        .iter()
        .map(String::as_str)
        .zip(compressed.iter())
        .collect();

    let mut path = std::env::temp_dir();
    path.push(format!("ecco_demo_{}.eccf", std::process::id()));
    write_model(&path, codec.metadata(), &pairs).unwrap();

    let fp16_bytes = layers * rows * cols * 2;
    let file_bytes = std::fs::metadata(&path).unwrap().len() as usize;
    println!(
        "wrote {layers}-layer model: {} KiB ECCF vs {} KiB FP16 ({:.2}x)",
        file_bytes / 1024,
        fp16_bytes / 1024,
        fp16_bytes as f64 / file_bytes as f64,
    );

    // Cold-start: reopen and load everything through one pooled pass.
    let all: Vec<&str> = names.iter().map(String::as_str).collect();
    let quarter: Vec<&str> = all.iter().step_by(4).copied().collect();

    // One throwaway full load so one-time lazy work (decode-table
    // builds for every codebook the model touches) doesn't bill the
    // first timed arm.
    let warm = Container::open(&path).unwrap();
    with_pool(&pool, || warm.load(&all)).unwrap();
    drop(warm);

    type OpenFn = fn(&std::path::Path) -> Result<Container, ecco::container::ContainerError>;
    for (label, open) in [
        ("mmap ", Container::open as OpenFn),
        ("pread", Container::open_buffered as OpenFn),
    ] {
        let container = open(&path).unwrap();
        let t0 = std::time::Instant::now();
        let full = with_pool(&pool, || container.load(&all)).unwrap();
        let full_t = t0.elapsed();

        let t0 = std::time::Instant::now();
        let part = with_pool(&pool, || container.load(&quarter)).unwrap();
        let part_t = t0.elapsed();

        let decoded: usize = full.iter().map(Tensor::len).sum::<usize>() * 4;
        println!(
            "{label} ({}): full {layers} layers {:>7.2?} ({:.1} MB/s decoded) | partial {}/{layers} layers {:>7.2?}",
            container.backend(),
            full_t,
            decoded as f64 / full_t.as_secs_f64() / 1e6,
            part.len(),
            part_t,
        );

        // The container is transport, not transformation: every loaded
        // tensor is bit-identical to the direct decode.
        for (t, ct) in full.iter().zip(&compressed) {
            assert_eq!(t.data(), codec.decompress(ct).data());
        }
    }

    std::fs::remove_file(&path).ok();
}
