//! Multi-tensor serving through the persistent worker pool: many
//! concurrent requests' KV-cache segments compressed and decompressed
//! as **batched submissions** instead of back-to-back per-tensor
//! pipelines.
//!
//! This is the software model of the paper's serving regime — the
//! hardware decoder earns its throughput by keeping many independent
//! blocks in flight; the pool earns its by keeping many independent
//! *requests'* blocks in one shared work queue, so small per-request
//! tensors never pay a per-call thread spawn and concurrent codecs never
//! oversubscribe threads.
//!
//! Run with `cargo run --release --example batched_serving`.

use ecco::bits::Block64;
use ecco::prelude::*;

fn main() {
    let model = ModelSpec::llama31_8b();
    let requests = 24usize;
    let seq = 128usize; // tokens per request segment (demo-sized)
    let (rows, cols) = model.kv_request_shape(seq);

    println!(
        "{} | per-request K segment {rows}x{cols} ({} KiB FP16) | {requests} live requests",
        model.name,
        rows * cols * 2 / 1024,
    );

    // One synthetic K-cache segment per live request.
    let segments: Vec<Tensor> = (0..requests)
        .map(|r| {
            SynthSpec::for_kind(TensorKind::KCache, rows, cols)
                .seeded(7000 + r as u64)
                .generate()
        })
        .collect();
    let refs: Vec<&Tensor> = segments.iter().collect();

    let cfg = EccoConfig {
        max_calibration_groups: 512,
        ..EccoConfig::default()
    };
    // Calibrate on up to the first 4 requests — clamped so a smaller
    // demo (fewer live requests) calibrates on what exists instead of
    // panicking; at the default 24 requests the slice is unchanged.
    let codec = KvCodec::calibrate(&refs[..refs.len().min(4)], &cfg);

    // Per-tensor loop: each request runs its own pipeline, one after the
    // other (what a naive server does).
    let t0 = std::time::Instant::now();
    let per_tensor: Vec<_> = refs.iter().map(|t| codec.compress(t)).collect();
    let loop_enc = t0.elapsed();

    // Batched submission: every request's groups enter the shared pool
    // as one chunk list.
    let t0 = std::time::Instant::now();
    let batched = codec.compress_batch(&refs);
    let batch_enc = t0.elapsed();

    for ((a, _), (b, _)) in per_tensor.iter().zip(&batched) {
        assert_eq!(a.blocks(), b.blocks(), "batch must be bit-identical");
    }

    // Decode side through the hardware parallel-decoder model, batched.
    let metas: Vec<TensorMetadata> = batched
        .iter()
        .map(|(ct, _)| codec.metadata().with_scale(ct.tensor_scale()))
        .collect();
    let hw_batch: Vec<(&[Block64], &TensorMetadata)> = batched
        .iter()
        .zip(&metas)
        .map(|((ct, _), m)| (ct.blocks(), m))
        .collect();
    let t0 = std::time::Instant::now();
    let decoded = ecco::hw::decode_tensors_batch(&hw_batch);
    let batch_dec = t0.elapsed();

    let mut worst_nmse = 0.0f64;
    for (r, t) in decoded.iter().zip(&segments) {
        let vals = r.as_ref().expect("healthy request decodes");
        assert_eq!(vals.len(), t.len());
        let out = Tensor::from_vec(t.rows(), t.cols(), vals.clone());
        worst_nmse = worst_nmse.max(ecco::tensor::stats::nmse(t, &out) as f64);
    }

    let syms = (requests * rows * cols) as f64;
    println!(
        "pool ({} executors): encode loop {:.1} ms vs batch {:.1} ms | \
         batched decode {:.1} Msym/s | worst request NMSE {:.2e}",
        ecco::codec::parallel::worker_threads(),
        loop_enc.as_secs_f64() * 1e3,
        batch_enc.as_secs_f64() * 1e3,
        syms / batch_dec.as_secs_f64() / 1e6,
        worst_nmse,
    );

    // Failure isolation: a request with a corrupted segment fails alone.
    let garbage: Vec<Block64> = (0..hw_batch[0].0.len())
        .map(|_| Block64::from_bytes([0xFF; 64]))
        .collect();
    let mixed = ecco::hw::decode_tensors_batch(&[hw_batch[0], (&garbage, &metas[0]), hw_batch[1]]);
    assert!(mixed[0].is_ok() && mixed[2].is_ok());
    println!(
        "corrupted request isolated: slot 1 -> {:?}, neighbours decode clean",
        mixed[1].as_ref().unwrap_err()
    );
}
