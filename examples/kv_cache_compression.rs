//! KV-cache compression: the online path with the hardware-friendly
//! min/max pattern selector, verified against the parallel-decoder model.
//!
//! Run with `cargo run --release --example kv_cache_compression`.

use ecco::codec::{decode_group, encode_group};
use ecco::hw::decode_block_parallel;
use ecco::prelude::*;
use ecco::tensor::stats::nmse;

fn main() {
    // Key and value caches have very different statistics: keys are
    // heavy-tailed (rotary structure + attention sinks), values milder.
    let k_cache = SynthSpec::for_kind(TensorKind::KCache, 256, 1024)
        .seeded(1)
        .generate();
    let v_cache = SynthSpec::for_kind(TensorKind::VCache, 256, 1024)
        .seeded(2)
        .generate();

    // One codec per cache side; the hardware path caps S at 16 patterns.
    for (name, cache) in [("K-cache", &k_cache), ("V-cache", &v_cache)] {
        let codec = KvCodec::calibrate(&[cache], &EccoConfig::default());
        let (compressed, stats) = codec.compress(cache);
        let restored = codec.decompress(&compressed);
        println!(
            "{name}: 4x into {} blocks | pad {:.2}% clip {:.3}% | NMSE {:.6}",
            compressed.blocks().len(),
            stats.pad_ratio() * 100.0,
            stats.clip_ratio() * 100.0,
            nmse(cache, &restored),
        );
    }

    // The paper's decompressor decodes 64 segments speculatively and
    // chains them by end-of-parse offsets; verify it agrees with the
    // sequential reference on live blocks.
    let codec = KvCodec::calibrate(&[&k_cache], &EccoConfig::default());
    let meta = codec
        .metadata()
        .with_scale(TensorMetadata::scale_for(&k_cache));
    let mut checked = 0usize;
    for group in k_cache.groups(128).take(256) {
        let (block, _) = encode_group(group, &meta, PatternSelector::MinMax);
        let (seq, _) = decode_group(&block, &meta).expect("valid block");
        let (par, trace) = decode_block_parallel(&block, &meta).expect("valid block");
        assert_eq!(seq, par, "parallel decoder must match sequential");
        assert_eq!(trace.merge_stages, 6);
        checked += 1;
    }
    println!(
        "parallel decoder: {checked} blocks decoded identically to the sequential \
         reference (64 decoders x 8 sub-decoders, 6-stage concatenation tree)"
    );
}
