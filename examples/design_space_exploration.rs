//! Design-space exploration: how the shared-pattern count `S` and
//! codebook count `H` trade accuracy against metadata (the paper's
//! Figure 5, reduced grid).
//!
//! Run with `cargo run --release --example design_space_exploration`.

use ecco::accuracy::dse::design_space;

fn main() {
    let s_values = [2usize, 8, 32, 64];
    let h_values = [1usize, 4];
    println!("sweeping S in {s_values:?}, H in {h_values:?} on the LLaMA-2-7B stack...\n");

    let result = design_space(&s_values, &h_values, 256);
    println!("{:>6} {:>6} {:>10}", "S", "H", "proxy PPL");
    for p in &result.points {
        println!("{:>6} {:>6} {:>10.4}", p.s, p.h, p.ppl);
    }
    println!("\nAWQ reference: {:.4}", result.awq_ppl);
    println!(
        "The paper picks S=64, H=4: past that point extra patterns/codebooks add \
         metadata without measurable perplexity gains."
    );
}
