//! Adversarial-input fuzzing of the *encode* path.
//!
//! The ingest fuzz layer (`fuzz_ingest.rs`) attacks serialized bytes;
//! this file attacks the other untrusted boundary: raw `f32` tensors
//! fed to `calibrate` + `compress`. Real checkpoints contain NaNs from
//! diverged training runs, infinities from overflowed optimizers,
//! denormal tails and negative zeros — none of which may panic the
//! encoder or emit blocks its own decoder rejects. The invariants:
//!
//! * **never panic**: any f32 storm — NaN/±inf floods, denormal dust,
//!   all-equal groups, mixed garbage — calibrates and compresses;
//! * **self-decodable output**: whatever the encoder emits, its own
//!   decoder accepts (garbage in, *typed values* out — non-finite
//!   inputs land as zero-scale groups, never as undecodable blocks);
//! * **bit-identical decode** for finite inputs across both window
//!   dispatch arms (SIMD and portable) and pools {1, 4} — the encoder
//!   must not produce blocks whose decode is tier- or pool-dependent.

use ecco::bits::{set_window_dispatch, window_dispatch, WindowDispatch};
use ecco::codec::{EccoConfig, WeightCodec};
use ecco::prelude::*;
use proptest::prelude::*;

const ROWS: usize = 2;
const COLS: usize = 256;

fn small_cfg() -> EccoConfig {
    EccoConfig {
        num_patterns: 8,
        books_per_pattern: 2,
        max_calibration_groups: 64,
        ..EccoConfig::default()
    }
}

/// One adversarial f32: heavily weighted toward the values that break
/// naive float handling, with a sprinkling of ordinary magnitudes.
fn adversarial_f32() -> impl Strategy<Value = f32> {
    prop_oneof![
        2 => Just(f32::NAN),
        2 => Just(f32::INFINITY),
        2 => Just(f32::NEG_INFINITY),
        2 => Just(-0.0f32),
        2 => Just(0.0f32),
        2 => Just(f32::MIN_POSITIVE / 4.0), // subnormal
        1 => Just(-f32::MIN_POSITIVE / 4.0),
        1 => Just(f32::MAX),
        1 => Just(f32::MIN),
        1 => Just(1.0e-38f32),
        4 => -1.0e4f32..1.0e4f32,
    ]
}

/// Decodes `ct` on both dispatch arms and pools {1, 4} and asserts every
/// arm reproduces `want` bit-exactly.
fn assert_decode_invariant_everywhere(
    codec: &WeightCodec,
    ct: &ecco::codec::CompressedTensor,
    want: &[f32],
) -> Result<(), proptest::test_runner::TestCaseError> {
    let prior = window_dispatch();
    for tier in [prior, WindowDispatch::Portable] {
        set_window_dispatch(tier);
        for threads in [1usize, 4] {
            let pool = PoolBuilder::new().threads(threads).build();
            let got = with_pool(&pool, || codec.decompress_parallel(ct));
            if got.data() != want {
                set_window_dispatch(prior);
                prop_assert_eq!(
                    got.data(),
                    want,
                    "decode diverged on tier {:?} pool {}",
                    tier,
                    threads
                );
            }
        }
    }
    set_window_dispatch(prior);
    Ok(())
}

proptest! {
    /// The core storm property: calibrate + compress any adversarial
    /// tensor without panicking, and the emitted blocks must decode —
    /// the encoder is never allowed to write a block its own decoder
    /// rejects, whatever garbage went in.
    #[test]
    fn encoder_survives_adversarial_storms(
        values in prop::collection::vec(adversarial_f32(), ROWS * COLS),
    ) {
        // The codec's numeric pipeline is FP16-range by design (the
        // paper's scales are f16-rounded), so "finite in → finite out"
        // is only promised inside that range; f32::MAX-scale inputs
        // overflow the scale path deterministically.
        let in_f16_range = values
            .iter()
            .all(|v| v.is_finite() && v.abs() <= 3.0e4);
        let t = Tensor::from_vec(ROWS, COLS, values);
        let codec = WeightCodec::calibrate(&[&t], &small_cfg());

        // Calibration on garbage must still produce metadata the wire
        // ingest accepts — non-finite centroids would be rejected as
        // corrupt by the very decoder this snapshot feeds.
        for p in &codec.metadata().patterns {
            prop_assert!(
                p.centroids().iter().all(|c| c.is_finite()),
                "calibration emitted a non-finite centroid"
            );
        }

        let (ct, _) = codec.compress(&t);
        let decoded = codec.decompress(&ct);
        prop_assert_eq!(decoded.len(), ROWS * COLS);
        if in_f16_range {
            prop_assert!(
                decoded.data().iter().all(|v| v.is_finite()),
                "finite in-range input decoded to a non-finite value"
            );
        }
        // Arm agreement is only assertable when the output has no NaNs
        // (NaN breaks bit-equality); every finite-output case gets it.
        if decoded.data().iter().all(|v| v.is_finite()) {
            assert_decode_invariant_everywhere(&codec, &ct, decoded.data())?;
        }
    }

    /// Finite-only storms additionally pin batch-encode determinism:
    /// `compress_batch` under pools {1, 4} emits the same blocks as the
    /// sequential `compress`, bit for bit.
    #[test]
    fn finite_storms_compress_identically_across_pools(
        values in prop::collection::vec(-1.0e4f32..1.0e4f32, ROWS * COLS),
    ) {
        let t = Tensor::from_vec(ROWS, COLS, values);
        let codec = WeightCodec::calibrate(&[&t], &small_cfg());
        let (want, _) = codec.compress(&t);
        for threads in [1usize, 4] {
            let pool = PoolBuilder::new().threads(threads).build();
            let got = with_pool(&pool, || codec.compress_batch(&[&t]));
            prop_assert_eq!(
                got[0].0.blocks(),
                want.blocks(),
                "pool {} batch encode diverged", threads
            );
        }
        assert_decode_invariant_everywhere(&codec, &want, codec.decompress(&want).data())?;
    }
}

/// The named worst cases, deterministically — storms proptest might not
/// compose in one run: whole-tensor floods of each special value and
/// the all-equal groups that collapse every centroid onto one point.
#[test]
fn special_value_floods_never_panic() {
    // (flood value, must the decode be finite?) — f32::MAX and ±inf
    // overflow the FP16-range scale path by design, so they only get
    // the no-panic + self-decodable guarantees.
    let floods: &[(&str, f32, bool)] = &[
        ("all-NaN", f32::NAN, true),
        ("all +inf", f32::INFINITY, true),
        ("all -inf", f32::NEG_INFINITY, true),
        ("all -0.0", -0.0, true),
        ("all zero", 0.0, true),
        ("all subnormal", f32::MIN_POSITIVE / 4.0, true),
        ("all f32::MAX", f32::MAX, false),
        ("all-equal 1.0", 1.0, true),
        ("all-equal -5.0", -5.0, true),
    ];
    for &(name, v, expect_finite) in floods {
        let t = Tensor::from_vec(ROWS, COLS, vec![v; ROWS * COLS]);
        let codec = WeightCodec::calibrate(&[&t], &small_cfg());
        let (ct, _) = codec.compress(&t);
        let decoded = codec.decompress(&ct);
        assert_eq!(decoded.len(), ROWS * COLS, "{name}: wrong output length");
        if expect_finite {
            assert!(
                decoded.data().iter().all(|x| x.is_finite()),
                "{name}: decoder emitted non-finite values"
            );
        }
    }

    // The all-equal floods must also round-trip accurately: an
    // all-equal group stores its value in the scale slot, so the decode
    // error is just FP8 scale rounding.
    for v in [1.0f32, -5.0] {
        let t = Tensor::from_vec(ROWS, COLS, vec![v; ROWS * COLS]);
        let codec = WeightCodec::calibrate(&[&t], &small_cfg());
        let (ct, _) = codec.compress(&t);
        for &x in codec.decompress(&ct).data() {
            assert!((x - v).abs() <= v.abs() * 0.07, "all-equal {v} decoded {x}");
        }
    }

    // A group that is entirely NaNs-and-zeros puts NaN in the absmax
    // slot — the one arrangement that used to panic the encoder's
    // internal stats decode. It must encode as a zero-scale group that
    // round-trips to exact zeros.
    let mut values = vec![0.0f32; ROWS * COLS];
    values[3] = f32::NAN;
    values[COLS + 7] = f32::NAN;
    let t = Tensor::from_vec(ROWS, COLS, values);
    let codec = WeightCodec::calibrate(&[&t], &small_cfg());
    let (ct, _) = codec.compress(&t);
    assert!(codec.decompress(&ct).data().iter().all(|&x| x == 0.0));
}

/// Calibrating on garbage and compressing healthy data must also hold:
/// a poisoned calibration set cannot brick the codec for clean tensors.
#[test]
fn poisoned_calibration_still_encodes_clean_tensors() {
    let poison = Tensor::from_vec(
        ROWS,
        COLS,
        (0..ROWS * COLS)
            .map(|i| match i % 5 {
                0 => f32::NAN,
                1 => f32::INFINITY,
                2 => -0.0,
                3 => f32::MIN_POSITIVE / 4.0,
                _ => (i as f32).sin(),
            })
            .collect(),
    );
    let clean = SynthSpec::for_kind(TensorKind::Weight, ROWS, COLS)
        .seeded(0xE4C0)
        .generate();
    let codec = WeightCodec::calibrate(&[&poison], &small_cfg());
    let (ct, stats) = codec.compress(&clean);
    assert!(stats.nmse().is_finite());
    let decoded = codec.decompress(&ct);
    assert!(decoded.data().iter().all(|v| v.is_finite()));
}
