//! Root-package coverage of the paged serving store (`ecco-serve`).
//!
//! Tier-1 verification (`cargo test -q` at the repo root) runs only this
//! package's tests, so this file is what pins the serving invariants on
//! every tier-1 run:
//!
//! * a page's hot -> cold -> hot round trip is **bit-identical** to a
//!   straight `KvCodec` compress/decompress of the same rows, across
//!   pool sizes {1, 4} and both window-dispatch arms,
//! * eviction under memory pressure never drops a live session's data —
//!   every open session reads back its full token stream at any point
//!   of a multi-tenant trace,
//! * a corrupted cold page surfaces as a **located per-page error**
//!   (salvaged under `SalvageBlocks`, failed under `FailTensor`)
//!   without poisoning the rest of the store.

use std::collections::HashMap;

use ecco::bits::{set_window_dispatch, window_dispatch, Block64, WindowDispatch};
use ecco::llm::{TrafficEvent, TrafficMix};
use ecco::prelude::*;
use ecco::serve::{PageTier, RecoveryPolicy, ServeError, SessionRead};

fn kv_rows(model: &ModelSpec, tokens: usize, seed: u64) -> Vec<f32> {
    SynthSpec::for_kind(TensorKind::KCache, tokens, model.kv_dim())
        .seeded(seed)
        .generate()
        .data()
        .to_vec()
}

fn kv_codec(model: &ModelSpec) -> KvCodec {
    let (rows, cols) = model.kv_request_shape(64);
    let calib = SynthSpec::for_kind(TensorKind::KCache, rows, cols)
        .seeded(77)
        .generate();
    KvCodec::calibrate(
        &[&calib],
        &EccoConfig {
            max_calibration_groups: 256,
            ..EccoConfig::default()
        },
    )
}

fn small_store(model: &ModelSpec, hot_capacity: usize) -> PagedKvStore {
    PagedKvStore::new(
        model,
        kv_codec(model),
        ServeConfig {
            page_tokens: 8,
            hot_capacity_pages: hot_capacity,
            ..ServeConfig::default()
        },
    )
}

#[test]
fn hot_cold_hot_is_bit_identical_to_straight_codec_across_pools_and_dispatch() {
    let model = ModelSpec::llama31_8b();
    let page_rows = kv_rows(&model, 8, 1);
    let page_tensor = Tensor::from_vec(8, model.kv_dim(), page_rows.clone());

    let host_tier = window_dispatch();
    let mut reference: Option<(Vec<Block64>, Vec<f32>)> = None;
    for tier in [host_tier, WindowDispatch::Portable] {
        set_window_dispatch(tier);
        for threads in [1usize, 4] {
            let pool = PoolBuilder::new().threads(threads).build();
            let (cold_blocks, promoted) = with_pool(&pool, || {
                // Capacity 1: appending page 1 forces page 0 cold.
                let mut st = small_store(&model, 1);
                let sid = st.open_session();
                st.append(sid, &page_rows).unwrap();
                st.append(sid, &kv_rows(&model, 8, 2)).unwrap();
                assert_eq!(st.page_tier(sid, 0).unwrap(), PageTier::Cold);

                // The evicted page's cold image must match a straight
                // compress of the same rows, bit for bit…
                let codec = st.codec().clone();
                let (want_ct, _) = codec.compress(&page_tensor);
                let got = st.cold_page(sid, 0).unwrap().expect("cold");
                assert_eq!(
                    got.blocks(),
                    want_ct.blocks(),
                    "eviction diverged from KvCodec::compress \
                     (threads {threads}, {tier:?})"
                );

                // …and the promoted read must match a straight
                // decompress, bit for bit.
                let blocks = got.blocks().to_vec();
                let hot = st.read_page(sid, 0).unwrap();
                assert_eq!(
                    hot,
                    codec.decompress(&want_ct).data(),
                    "promotion diverged from KvCodec::decompress \
                     (threads {threads}, {tier:?})"
                );
                assert_eq!(st.page_tier(sid, 0).unwrap(), PageTier::Hot);
                (blocks, hot)
            });

            // Identical across every pool size and dispatch arm.
            match &reference {
                None => reference = Some((cold_blocks, promoted)),
                Some((b, v)) => {
                    assert_eq!(&cold_blocks, b, "cold image varies with pool/dispatch");
                    assert_eq!(&promoted, v, "promoted read varies with pool/dispatch");
                }
            }
        }
    }
    set_window_dispatch(host_tier);
}

#[test]
fn eviction_never_drops_a_live_sessions_data() {
    // A multi-tenant trace against a hot tier far smaller than the
    // working set: every open session must read back its exact token
    // count at every checkpoint, no matter how often its pages cycle
    // through the cold tier.
    let model = ModelSpec::llama31_8b();
    let mut st = PagedKvStore::new(
        &model,
        kv_codec(&model),
        ServeConfig {
            page_tokens: 8,
            hot_capacity_pages: 4, // pathological pressure
            ..ServeConfig::default()
        },
    );
    let mix = TrafficMix {
        sessions: 12,
        live: 4,
        prompt_tokens: (3, 40),
        decode_tokens: (5, 30),
        seed: 9,
    };
    let mut handles: HashMap<usize, _> = HashMap::new();
    let mut ledger: HashMap<usize, usize> = HashMap::new();
    let mut out = Vec::new();
    for (i, ev) in mix.events().iter().enumerate() {
        match *ev {
            TrafficEvent::Open { session } => {
                handles.insert(session, st.open_session());
                ledger.insert(session, 0);
            }
            TrafficEvent::Prefill { session, tokens } => {
                st.append(handles[&session], &kv_rows(&model, tokens, 100 + i as u64))
                    .unwrap();
                *ledger.get_mut(&session).unwrap() += tokens;
            }
            TrafficEvent::Decode { session } => {
                st.append(handles[&session], &kv_rows(&model, 1, 500 + i as u64))
                    .unwrap();
                *ledger.get_mut(&session).unwrap() += 1;
            }
            TrafficEvent::Close { session } => {
                // Final integrity check before the pages are freed.
                let sid = handles.remove(&session).unwrap();
                let tokens = ledger.remove(&session).unwrap();
                out.clear();
                let r: SessionRead = st.read_session_into(sid, &mut out).unwrap();
                assert!(r.corruptions.is_empty());
                assert_eq!(out.len(), tokens * model.kv_dim(), "session {session}");
                st.close_session(sid).unwrap();
            }
        }
        assert!(st.hot_pages() <= 4 + 1, "hot tier overran its capacity");
        if i % 16 == 0 {
            // Spot-check every live session mid-flight.
            for (&session, sid) in &handles {
                assert_eq!(st.session_tokens(*sid).unwrap(), ledger[&session]);
                out.clear();
                st.read_session_into(*sid, &mut out).unwrap();
                assert_eq!(
                    out.len(),
                    ledger[&session] * model.kv_dim(),
                    "live session {session} lost data under eviction"
                );
            }
        }
    }
    assert_eq!(st.live_sessions(), 0, "trace closes every session");
    assert!(
        st.metrics().evictions > 0,
        "pressure never triggered eviction"
    );
}

#[test]
fn corrupt_cold_page_is_a_located_error_not_a_poisoned_store() {
    let model = ModelSpec::llama31_8b();

    // SalvageBlocks (default): the read succeeds, zero-fills the bad
    // groups, and reports exactly where the rot is.
    let mut st = small_store(&model, 1);
    let sid = st.open_session();
    st.append(sid, &kv_rows(&model, 8, 10)).unwrap();
    st.append(sid, &kv_rows(&model, 8, 11)).unwrap(); // page 0 -> cold
    let ct = st.cold_page(sid, 0).unwrap().expect("cold");
    let mut blocks = ct.blocks().to_vec();
    blocks[7] = Block64::from_bytes([0xFF; 64]);
    let rotted = ct.with_blocks(blocks);
    st.replace_cold_page(sid, 0, rotted).unwrap();

    let mut out = Vec::new();
    let r = st.read_session_into(sid, &mut out).unwrap();
    assert_eq!(
        out.len(),
        16 * model.kv_dim(),
        "salvaged read serves full stream"
    );
    assert_eq!(r.corruptions.len(), 1);
    let c = &r.corruptions[0];
    assert_eq!((c.session, c.page), (sid, 0), "located at its page");
    assert_eq!(c.bad_blocks[0].block, Some(7), "located at its block");
    let gs = st.codec().metadata().group_size;
    assert!(
        out[7 * gs..8 * gs].iter().all(|&v| v == 0.0),
        "bad group zero-filled"
    );

    // Not poisoned: the store keeps serving — the corrupt page stays
    // cold (never admitted), new sessions and appends work.
    assert_eq!(st.page_tier(sid, 0).unwrap(), PageTier::Cold);
    let other = st.open_session();
    st.append(other, &kv_rows(&model, 12, 12)).unwrap();
    out.clear();
    assert!(st
        .read_session_into(other, &mut out)
        .unwrap()
        .corruptions
        .is_empty());
    assert_eq!(out.len(), 12 * model.kv_dim());

    // FailTensor: the same rot fails that page's read alone, located.
    let mut st = PagedKvStore::new(
        &model,
        kv_codec(&model),
        ServeConfig {
            page_tokens: 8,
            hot_capacity_pages: 1,
            recovery: RecoveryPolicy::FailTensor,
            ..ServeConfig::default()
        },
    );
    let sid = st.open_session();
    st.append(sid, &kv_rows(&model, 8, 13)).unwrap();
    st.append(sid, &kv_rows(&model, 8, 14)).unwrap();
    let ct = st.cold_page(sid, 0).unwrap().expect("cold");
    let mut blocks = ct.blocks().to_vec();
    blocks[0] = Block64::from_bytes([0xFF; 64]);
    let rotted = ct.with_blocks(blocks);
    st.replace_cold_page(sid, 0, rotted).unwrap();

    out.clear();
    match st.read_page_into(sid, 0, &mut out) {
        Err(ServeError::CorruptPage(c)) => {
            assert_eq!((c.session, c.page), (sid, 0));
            assert_eq!(c.bad_blocks[0].block, Some(0));
        }
        other => panic!("expected CorruptPage, got {other:?}"),
    }
    assert!(out.is_empty(), "failed page read must not emit values");
    // The healthy hot page is untouched.
    out.clear();
    st.read_page_into(sid, 1, &mut out).unwrap();
    assert_eq!(out.len(), 8 * model.kv_dim());
}
