//! Golden-file pin of the ECCF container writer.
//!
//! The container is a persistence format: bytes written today must open
//! under every future reader, and an innocent-looking writer refactor
//! that shifts one field is a silent compatibility break. This test
//! freezes the written image of a deterministic seeded fixture two ways:
//!
//! * **byte-exact** — total length and CRC-32 of the whole image. Any
//!   writer change that alters one bit fails here first; if the change
//!   is an *intentional* format revision, bump `CONTAINER_VERSION` and
//!   re-pin these constants in the same commit.
//! * **field-level** — magic/version/flags placement, footer arithmetic,
//!   directory shape and per-entry fields, decoded independently of the
//!   reader under test, so a reader bug cannot mask a writer bug.

use ecco::codec::{wire, EccoConfig, WeightCodec};
use ecco::container::{
    crc32, encode_model, Container, CONTAINER_VERSION, FOOTER_BYTES, HEADER_BYTES,
};
use ecco::tensor::{synth::SynthSpec, Tensor, TensorKind};

/// Three small tensors of different kinds/shapes under one calibration —
/// enough to exercise multi-frame layout without slowing the suite.
const FIXTURE: &[(&str, TensorKind, usize, usize, u64)] = &[
    ("layer0.attn.wq", TensorKind::Weight, 16, 256, 9001),
    ("layer0.mlp.w1", TensorKind::Weight, 8, 512, 9002),
    ("layer1.kv.cache", TensorKind::KCache, 4, 256, 9003),
];

fn fixture() -> (WeightCodec, Vec<(String, ecco::codec::CompressedTensor)>) {
    let tensors: Vec<Tensor> = FIXTURE
        .iter()
        .map(|&(_, kind, rows, cols, seed)| {
            SynthSpec::for_kind(kind, rows, cols)
                .seeded(seed)
                .generate()
        })
        .collect();
    let refs: Vec<&Tensor> = tensors.iter().collect();
    let cfg = EccoConfig {
        num_patterns: 8,
        books_per_pattern: 2,
        max_calibration_groups: 64,
        ..EccoConfig::default()
    };
    let codec = WeightCodec::calibrate(&refs, &cfg);
    let compressed = codec
        .compress_batch(&refs)
        .into_iter()
        .zip(FIXTURE)
        .map(|((ct, _), &(name, ..))| (name.to_owned(), ct))
        .collect();
    (codec, compressed)
}

fn fixture_image() -> Vec<u8> {
    let (codec, compressed) = fixture();
    let pairs: Vec<(&str, &ecco::codec::CompressedTensor)> =
        compressed.iter().map(|(n, ct)| (n.as_str(), ct)).collect();
    encode_model(codec.metadata(), &pairs)
}

/// Byte-exact pin: re-derive these with the `regen_golden` test below
/// when (and only when) the format intentionally changes.
const GOLDEN_LEN: usize = 6261;
const GOLDEN_CRC: u32 = 0xF35E_CA14;

#[test]
fn writer_output_is_byte_exact() {
    let image = fixture_image();
    assert_eq!(
        (image.len(), crc32(&image)),
        (GOLDEN_LEN, GOLDEN_CRC),
        "ECCF writer output changed — if intentional, bump CONTAINER_VERSION and re-pin"
    );
}

#[test]
fn writer_is_deterministic() {
    assert_eq!(fixture_image(), fixture_image());
}

#[test]
fn field_level_layout() {
    let image = fixture_image();

    // Header.
    assert_eq!(&image[..4], b"ECCF");
    assert_eq!(u16::from_le_bytes([image[4], image[5]]), CONTAINER_VERSION);
    assert_eq!(u16::from_le_bytes([image[6], image[7]]), 0, "flags");
    assert_eq!(&image[8..16], &[0u8; 8], "reserved");

    // Footer.
    let f = image.len() - FOOTER_BYTES;
    assert_eq!(&image[f + 12..], b"FCCE");
    let index_offset = u64::from_le_bytes(image[f..f + 8].try_into().unwrap()) as usize;
    let index_crc = u32::from_le_bytes(image[f + 8..f + 12].try_into().unwrap());
    assert!(index_offset >= HEADER_BYTES && index_offset < f);
    let dir = &image[index_offset..f];
    assert_eq!(crc32(dir), index_crc, "directory CRC");

    // Directory header: magic, count, metadata span + CRC.
    assert_eq!(&dir[..4], b"ECCX");
    let count = u32::from_le_bytes(dir[4..8].try_into().unwrap()) as usize;
    assert_eq!(count, FIXTURE.len());
    let meta_offset = u64::from_le_bytes(dir[8..16].try_into().unwrap()) as usize;
    let meta_len = u64::from_le_bytes(dir[16..24].try_into().unwrap()) as usize;
    let meta_crc = u32::from_le_bytes(dir[24..28].try_into().unwrap());
    assert_eq!(meta_offset, HEADER_BYTES, "snapshot directly after header");
    let meta_bytes = &image[meta_offset..meta_offset + meta_len];
    assert_eq!(&meta_bytes[..4], b"ECCM");
    assert_eq!(crc32(meta_bytes), meta_crc, "metadata CRC");
    wire::decode_metadata(meta_bytes).expect("snapshot revives");

    // Entries: walk the directory by hand, independent of the reader.
    let mut pos = 28usize;
    let mut next_frame = meta_offset + meta_len;
    for &(want_name, _, rows, cols, _) in FIXTURE {
        let name_len = u16::from_le_bytes(dir[pos..pos + 2].try_into().unwrap()) as usize;
        pos += 2;
        let name = std::str::from_utf8(&dir[pos..pos + name_len]).unwrap();
        pos += name_len;
        let offset = u64::from_le_bytes(dir[pos..pos + 8].try_into().unwrap()) as usize;
        let len = u64::from_le_bytes(dir[pos + 8..pos + 16].try_into().unwrap()) as usize;
        let block_count = u32::from_le_bytes(dir[pos + 16..pos + 20].try_into().unwrap());
        let decoded_len = u64::from_le_bytes(dir[pos + 20..pos + 28].try_into().unwrap());
        let crc = u32::from_le_bytes(dir[pos + 28..pos + 32].try_into().unwrap());
        pos += 32;

        assert_eq!(name, want_name);
        assert_eq!(offset, next_frame, "frames are contiguous, in order");
        assert_eq!(decoded_len as usize, rows * cols);
        assert_eq!(
            len,
            wire::TENSOR_FRAME_HEADER_BYTES + block_count as usize * 64,
            "frame-size arithmetic"
        );
        let frame = &image[offset..offset + len];
        assert_eq!(&frame[..4], b"ECCT");
        assert_eq!(crc32(frame), crc, "frame CRC");
        next_frame = offset + len;
    }
    assert_eq!(pos, dir.len(), "no trailing directory bytes");
    assert_eq!(next_frame, index_offset, "directory directly after frames");
}

#[test]
fn golden_image_opens_and_roundtrips() {
    let (codec, compressed) = fixture();
    let image = fixture_image();
    let container = Container::from_bytes(image).unwrap();
    assert_eq!(container.len(), FIXTURE.len());
    for (name, ct) in &compressed {
        let got = container.load(&[name.as_str()]).unwrap();
        assert_eq!(got[0].data(), codec.decompress(ct).data());
    }
}

/// Not a test of the code — a regeneration helper. Run
/// `cargo test -q --test container_golden -- --ignored --nocapture`
/// after an intentional format change and copy the printed constants.
#[test]
#[ignore]
fn regen_golden() {
    let image = fixture_image();
    println!(
        "const GOLDEN_LEN: usize = {};\nconst GOLDEN_CRC: u32 = 0x{:08X};",
        image.len(),
        crc32(&image)
    );
}
