//! Tier-1 end-to-end coverage of the ECCF container: write a model,
//! reopen it on every byte-source backend, and load tensors — full model
//! and 25%-of-layers partial — through the pooled batch decoder on pools
//! {1, 4}. Every arm must reproduce the direct `decompress` output bit
//! for bit: the container is transport, not transformation.

use std::path::PathBuf;

use ecco::codec::{EccoConfig, WeightCodec};
use ecco::container::{write_model, Container, ContainerError};
use ecco::prelude::*;

const LAYERS: usize = 8;

struct Model {
    codec: WeightCodec,
    names: Vec<String>,
    compressed: Vec<ecco::codec::CompressedTensor>,
    baseline: Vec<Vec<f32>>,
}

/// An 8-layer synthetic model — enough layers that a 25% partial load is
/// a real subset — compressed once, with per-tensor baselines from the
/// direct decode path.
fn model() -> Model {
    let tensors: Vec<Tensor> = (0..LAYERS)
        .map(|i| {
            let kind = if i % 2 == 0 {
                TensorKind::Weight
            } else {
                TensorKind::KCache
            };
            SynthSpec::for_kind(kind, 4 + i, 256)
                .seeded(0xC0DE + i as u64)
                .generate()
        })
        .collect();
    let refs: Vec<&Tensor> = tensors.iter().collect();
    let cfg = EccoConfig {
        num_patterns: 8,
        books_per_pattern: 2,
        max_calibration_groups: 64,
        ..EccoConfig::default()
    };
    let codec = WeightCodec::calibrate(&refs, &cfg);
    let compressed: Vec<_> = codec
        .compress_batch(&refs)
        .into_iter()
        .map(|(ct, _)| ct)
        .collect();
    let baseline = compressed
        .iter()
        .map(|ct| codec.decompress(ct).data().to_vec())
        .collect();
    Model {
        codec,
        names: (0..LAYERS).map(|i| format!("layer{i}.w")).collect(),
        compressed,
        baseline,
    }
}

fn temp_eccf(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ecco_rt_{tag}_{}.eccf", std::process::id()));
    p
}

fn write_fixture(m: &Model, tag: &str) -> PathBuf {
    let path = temp_eccf(tag);
    let pairs: Vec<(&str, &ecco::codec::CompressedTensor)> = m
        .names
        .iter()
        .map(String::as_str)
        .zip(m.compressed.iter())
        .collect();
    write_model(&path, m.codec.metadata(), &pairs).unwrap();
    path
}

/// Full-model and 25% partial loads on one opened container, across
/// pools {1, 4}, checked bit-exactly against the baseline.
fn check_loads(m: &Model, container: &Container) {
    let all: Vec<&str> = m.names.iter().map(String::as_str).collect();
    // The 25% partial selection: every 4th layer, off-order on purpose —
    // random access must not care about directory order.
    let partial: Vec<&str> = [6usize, 2].iter().map(|&i| all[i]).collect();
    let partial_base: Vec<&[f32]> = [6usize, 2].iter().map(|&i| &m.baseline[i][..]).collect();

    for threads in [1usize, 4] {
        let pool = PoolBuilder::new().threads(threads).build();

        let full = with_pool(&pool, || container.load_all()).unwrap();
        assert_eq!(full.len(), LAYERS);
        for (i, (name, t)) in full.iter().enumerate() {
            assert_eq!(name, &m.names[i]);
            assert_eq!(
                t.data(),
                &m.baseline[i][..],
                "pool {threads}: full load diverged on {name}"
            );
        }

        let part = with_pool(&pool, || container.load(&partial)).unwrap();
        for ((t, want), name) in part.iter().zip(&partial_base).zip(&partial) {
            assert_eq!(
                t.data(),
                *want,
                "pool {threads}: partial load diverged on {name}"
            );
        }
    }
}

#[test]
fn mmap_backend_roundtrips() {
    let m = model();
    let path = write_fixture(&m, "mmap");
    let container = Container::open(&path).unwrap();
    // With ECCO_NO_MMAP set in the environment this arm degrades to
    // pread — still a valid roundtrip, just redundant with the test
    // below.
    check_loads(&m, &container);
    drop(container);
    std::fs::remove_file(&path).ok();
}

#[test]
fn pread_backend_roundtrips() {
    let m = model();
    let path = write_fixture(&m, "pread");
    let container = Container::open_buffered(&path).unwrap();
    assert_eq!(container.backend(), "pread");
    check_loads(&m, &container);
    drop(container);
    std::fs::remove_file(&path).ok();
}

#[test]
fn bytes_backend_roundtrips() {
    let m = model();
    let path = write_fixture(&m, "bytes");
    let image = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let container = Container::from_bytes(image).unwrap();
    assert_eq!(container.backend(), "bytes");
    check_loads(&m, &container);
}

#[test]
fn read_compressed_matches_written_blocks() {
    let m = model();
    let path = write_fixture(&m, "blocks");
    let container = Container::open(&path).unwrap();
    for (name, ct) in m.names.iter().zip(&m.compressed) {
        let got = container.read_compressed(name).unwrap();
        assert_eq!(got.blocks(), ct.blocks(), "{name}: frame bytes changed");
        assert_eq!(got.rows(), ct.rows());
        assert_eq!(got.cols(), ct.cols());
        assert_eq!(got.tensor_scale(), ct.tensor_scale());
    }
    drop(container);
    std::fs::remove_file(&path).ok();
}

#[test]
fn unknown_tensor_is_a_clean_error() {
    let m = model();
    let path = write_fixture(&m, "unknown");
    let container = Container::open(&path).unwrap();
    assert!(matches!(
        container.load(&["no.such.tensor"]),
        Err(ContainerError::UnknownTensor(n)) if n == "no.such.tensor"
    ));
    drop(container);
    std::fs::remove_file(&path).ok();
}
