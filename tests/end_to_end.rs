//! Cross-crate integration: the full pipeline from synthetic model to
//! compressed blocks, hardware models and the timing simulator.

use ecco::codec::{decode_group, encode_group};
use ecco::hw::{decode_block_parallel, HwCompressor};
use ecco::prelude::*;
use ecco::tensor::stats::nmse;

#[test]
fn weight_pipeline_end_to_end() {
    let w = SynthSpec::for_kind(TensorKind::Weight, 64, 1024)
        .seeded(1001)
        .generate();
    let codec = WeightCodec::calibrate(&[&w], &EccoConfig::default());
    let (ct, stats) = codec.compress(&w);

    // Exactly 4x, block-for-block.
    assert_eq!(ct.compressed_bytes() * 4, w.len() * 2);
    assert_eq!(ct.blocks().len(), w.len() / 128);

    // Reconstruction quality in the 4-bit class.
    let out = codec.decompress(&ct);
    let e = nmse(&w, &out);
    assert!(e < 0.02, "weight NMSE {e}");
    assert!((stats.nmse() - e).abs() < 1e-9);

    // Every block decodes identically through the hardware parallel model.
    let meta = codec.metadata().with_scale(TensorMetadata::scale_for(&w));
    for block in ct.blocks().iter().take(64) {
        let (seq, _) = decode_group(block, &meta).expect("valid block");
        let (par, _) = decode_block_parallel(block, &meta).expect("valid block");
        assert_eq!(seq, par);
    }
}

#[test]
fn kv_pipeline_with_hw_compressor() {
    let k = SynthSpec::for_kind(TensorKind::KCache, 64, 1024)
        .seeded(1002)
        .generate();
    let codec = KvCodec::calibrate(&[&k], &EccoConfig::default());
    let meta = codec.metadata().with_scale(TensorMetadata::scale_for(&k));
    let hw = HwCompressor::new(&meta);

    for group in k.groups(128).take(128) {
        let (sw_block, sw_info) = encode_group(group, &meta, PatternSelector::MinMax);
        let (hw_block, hw_info, trace) = hw.compress_group(group);
        assert_eq!(sw_block.as_bytes(), hw_block.as_bytes(), "hw == sw codec");
        assert_eq!(sw_info, hw_info);
        assert_eq!(trace.sorter_stages, 28);
    }
}

#[test]
fn activation_pipeline_2x() {
    let a = SynthSpec::for_kind(TensorKind::Activation, 64, 1024)
        .seeded(1003)
        .generate();
    let codec = ActivationCodec::new();
    let (blocks, stats) = codec.compress(&a);
    assert_eq!(blocks.len() * 64 * 2, a.len() * 2);
    let out = codec.decompress(&blocks, a.rows(), a.cols());
    assert!(nmse(&a, &out) < 1e-3);
    assert!(stats.clip_ratio() == 0.0, "2x path never clips");
}

#[test]
fn compression_feeds_simulator_consistently() {
    // The simulator's Ecco scheme assumes 4x weights/KV and 2x
    // activations; the codec must actually deliver those ratios.
    let w = SynthSpec::for_kind(TensorKind::Weight, 32, 1024)
        .seeded(1004)
        .generate();
    let codec = WeightCodec::calibrate(&[&w], &EccoConfig::default());
    let (ct, _) = codec.compress(&w);
    let achieved_bits = ct.compressed_bytes() as f64 * 8.0 / w.len() as f64;
    let scheme = ExecScheme::ecco();
    assert!(
        (achieved_bits - scheme.weight_bits).abs() < 1e-9,
        "codec delivers {achieved_bits} bits/value; simulator assumes {}",
        scheme.weight_bits
    );

    // And the end-to-end consequence: a >2x decode speedup on LLaMA-13B.
    let engine = SimEngine::new(GpuSpec::a100());
    let wl = DecodeWorkload::new(ModelSpec::llama_13b(), 8, 2048);
    let fp16 = wl.step_time(&engine, &ExecScheme::fp16_trt()).total;
    let ecco = wl.step_time(&engine, &scheme).total;
    assert!(fp16 / ecco > 2.0, "speedup {}", fp16 / ecco);
}

#[test]
fn memory_footprint_matches_block_accounting() {
    // Figure 12's footprint model vs actual blocks for a small model.
    let model = ModelSpec::llama_7b();
    let fp = ecco::llm::memory::footprint(&model, &ExecScheme::ecco(), 1, 128);
    let fp16 = ecco::llm::memory::footprint(&model, &ExecScheme::fp16_trt(), 1, 128);
    let ratio = fp16.total() / fp.total();
    assert!(ratio > 3.9 && ratio <= 4.0, "memory reduction {ratio}");
}

#[test]
fn cross_kind_calibration_generalizes() {
    // Calibrate the weight codec on two tensors, compress a third drawn
    // from the same distribution family but a different seed.
    let a = SynthSpec::for_kind(TensorKind::Weight, 32, 1024)
        .seeded(1)
        .generate();
    let b = SynthSpec::for_kind(TensorKind::Weight, 32, 1024)
        .seeded(2)
        .generate();
    let c = SynthSpec::for_kind(TensorKind::Weight, 32, 1024)
        .seeded(3)
        .generate();
    let codec = WeightCodec::calibrate(&[&a, &b], &EccoConfig::default());
    let (out, _) = codec.roundtrip(&c);
    assert!(
        nmse(&c, &out) < 0.03,
        "generalization NMSE {}",
        nmse(&c, &out)
    );
}
