//! Root-package round-trip through the parallel codec APIs.
//!
//! Tier-1 verification (`cargo test -q` at the repo root) runs only this
//! package's tests, so this file is what guarantees the batched decoder
//! front end (`BlockCursor::windows8` + gathered `SegmentLut` probes)
//! is exercised on every tier-1 run — on both dispatch arms — not just
//! by the workspace CI run.

use ecco::bits::{set_window_dispatch, window_dispatch, WindowDispatch};
use ecco::prelude::*;

#[test]
fn weight_roundtrip_through_parallel_codec_and_batched_decoder() {
    let t = SynthSpec::for_kind(TensorKind::Weight, 16, 512)
        .seeded(4001)
        .generate();
    let codec = WeightCodec::calibrate(&[&t], &EccoConfig::default());

    // Parallel compress/decompress round-trips and matches the
    // sequential path bit-for-bit.
    let (ct, stats) = codec.compress_parallel(&t);
    assert!(stats.nmse() < 0.05, "nmse {}", stats.nmse());
    let out = codec.decompress_parallel(&ct);
    assert_eq!((out.rows(), out.cols()), (t.rows(), t.cols()));
    let (ct_seq, _) = codec.compress(&t);
    assert_eq!(ct.blocks(), ct_seq.blocks(), "parallel encode diverged");
    assert_eq!(out.data(), codec.decompress(&ct_seq).data());

    // The hardware model's batched window-extraction front end must
    // reconstruct the identical values — through the host's dispatch
    // tier (SIMD where supported) and through the forced-scalar arm.
    let meta = codec.metadata().with_scale(ct.tensor_scale());
    let host_tier = window_dispatch();
    let hw_batched = ecco::hw::decode_blocks_parallel(ct.blocks(), &meta).unwrap();
    set_window_dispatch(WindowDispatch::Portable);
    let hw_scalar = ecco::hw::decode_blocks_parallel(ct.blocks(), &meta);
    set_window_dispatch(host_tier);
    assert_eq!(hw_batched, out.data(), "batched hw decode diverged");
    assert_eq!(
        hw_scalar.unwrap(),
        out.data(),
        "forced-scalar hw decode diverged"
    );
}

#[test]
fn revived_metadata_decodes_through_batched_pipeline() {
    // Serde-style revival: rebuild_tables leaves every derived cache
    // (codebook decode LUTs, SegmentLuts, length/boundary tables) in the
    // empty state deserialization produces; the batched parallel decode
    // must self-heal them on first use and stay bit-identical.
    let t = SynthSpec::for_kind(TensorKind::KCache, 8, 512)
        .seeded(4002)
        .generate();
    let codec = WeightCodec::calibrate(&[&t], &EccoConfig::default());
    let (ct, _) = codec.compress_parallel(&t);
    let out = codec.decompress_parallel(&ct);

    let mut revived = codec.metadata().with_scale(ct.tensor_scale());
    revived.rebuild_tables();
    let vals = ecco::hw::decode_blocks_parallel(ct.blocks(), &revived)
        .expect("revived metadata must decode without a warm-up call");
    assert_eq!(vals, out.data());
}
