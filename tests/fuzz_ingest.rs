//! Structure-aware fuzzing of the codec's untrusted-ingest surface.
//!
//! Every property here mutates *serialized* artifacts — `ECCM` metadata
//! snapshots and `ECCT` compressed-tensor frames from `ecco::codec::wire`,
//! plus raw 64-byte block streams — with field-targeted bit flips,
//! truncations, length-field lies and block splices, then drives the
//! mutated bytes through both decoder arms. The invariants:
//!
//! * **never panic**: every malformation surfaces as a typed
//!   [`DecodeError`], whatever the mutation;
//! * **located errors**: truncations and corrupt blocks are reported at
//!   the right tensor/block index;
//! * **arm agreement**: the sequential reference decoder and the
//!   hardware parallel decoder return the same values *and the same
//!   errors* on corrupt input, across pool sizes {1, 4}.
//!
//! The vendored proptest honours `PROPTEST_CASES` (the CI fuzz-smoke leg
//! raises it to 256+ under both `ECCO_THREADS=1` and `ECCO_THREADS=4`,
//! with and without `--features force-scalar` so both window-dispatch
//! arms see the same corpus). It has no shrinking, so failures report
//! the deterministic case index instead of a minimized seed.

use std::collections::BTreeSet;
use std::sync::OnceLock;

use ecco::bits::{Block64, BLOCK_BYTES};
use ecco::codec::block::{
    decode_group, decode_group_two_pass, parse_block_header, DecodeError, DecodeErrorKind,
};
use ecco::codec::parallel::RecoveryPolicy;
use ecco::codec::wire::{
    decode_metadata, decode_tensor, encode_metadata, encode_tensor, METADATA_MAGIC,
};
use ecco::codec::{BatchOutcome, CompressedTensor, EccoConfig, TensorMetadata, WeightCodec};
use ecco::container::{crc32, encode_model, Container, ContainerError, FOOTER_BYTES};
use ecco::prelude::*;
use proptest::prelude::*;

/// The two tensor names in the container fixture — same byte length, so
/// the duplicate-name splice below can overwrite one with the other
/// without reshaping the directory.
const T0: &str = "blk.0.w";
const T1: &str = "blk.1.w";

struct Fixture {
    codec: WeightCodec,
    ct: CompressedTensor,
    ct2: CompressedTensor,
    meta: TensorMetadata,
    meta_bytes: Vec<u8>,
    frame_bytes: Vec<u8>,
    /// ECCF container image holding `ct` as [`T0`] and `ct2` as [`T1`].
    image: Vec<u8>,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let t = SynthSpec::for_kind(TensorKind::Weight, 8, 256)
            .seeded(0xF022)
            .generate();
        let t2 = SynthSpec::for_kind(TensorKind::Weight, 4, 256)
            .seeded(0xF023)
            .generate();
        let cfg = EccoConfig {
            num_patterns: 8,
            books_per_pattern: 2,
            max_calibration_groups: 64,
            ..EccoConfig::default()
        };
        let codec = WeightCodec::calibrate(&[&t], &cfg);
        let (ct, _) = codec.compress(&t);
        let (ct2, _) = codec.compress(&t2);
        let meta = codec.metadata().with_scale(ct.tensor_scale());
        let meta_bytes = encode_metadata(&meta);
        let frame_bytes = encode_tensor(&ct);
        let image = encode_model(codec.metadata(), &[(T0, &ct), (T1, &ct2)]);
        Fixture {
            codec,
            ct,
            ct2,
            meta,
            meta_bytes,
            frame_bytes,
            image,
        }
    })
}

/// Recomputes the footer's directory CRC after a directory mutation, so
/// an index-entry *lie* reaches the structural validators instead of
/// being rejected as a checksum mismatch.
fn reseal_directory(image: &mut [u8]) {
    let f = image.len() - FOOTER_BYTES;
    let index_offset = u64::from_le_bytes(image[f..f + 8].try_into().unwrap()) as usize;
    let crc = crc32(&image[index_offset..f]);
    image[f + 8..f + 12].copy_from_slice(&crc.to_le_bytes());
}

/// Absolute byte offset, within the image, of each directory entry's
/// fixed fields (`offset | len | block_count | decoded_len | crc`),
/// found by walking the directory exactly as the format defines it.
fn entry_field_positions(image: &[u8]) -> Vec<usize> {
    let f = image.len() - FOOTER_BYTES;
    let index_offset = u64::from_le_bytes(image[f..f + 8].try_into().unwrap()) as usize;
    let count = u32::from_le_bytes(
        image[index_offset + 4..index_offset + 8]
            .try_into()
            .unwrap(),
    );
    let mut pos = index_offset + 28;
    let mut out = Vec::new();
    for _ in 0..count {
        let name_len = u16::from_le_bytes(image[pos..pos + 2].try_into().unwrap()) as usize;
        out.push(pos + 2 + name_len);
        pos += 2 + name_len + 32;
    }
    out
}

/// Unwraps the located decode error out of a container failure.
fn decode_err(e: ContainerError) -> DecodeError {
    match e {
        ContainerError::Decode(d) => d,
        other => panic!("expected a located decode error, got {other}"),
    }
}

/// Decodes a block stream sequentially, returning per-block outcomes.
fn decode_seq(blocks: &[Block64], meta: &TensorMetadata) -> Vec<Result<Vec<f32>, DecodeError>> {
    blocks
        .iter()
        .map(|b| decode_group(b, meta).map(|(v, _)| v))
        .collect()
}

/// Asserts the hardware parallel decoder agrees with the sequential
/// reference on `blocks` — same values when healthy, same error kind
/// located at the first failing block otherwise — on pools {1, 4}.
///
/// The sequential reference is the *fused* decode-to-values walk
/// ([`decode_group`]); it is first pinned bit-for-bit against the
/// retired two-pass decoder ([`decode_group_two_pass`]) on every block,
/// healthy or corrupt, so the whole mutated corpus exercises
/// fused == two-pass (the walk itself is pinned against `seed_port` by
/// the differential proptests in `ecco-hw::paradec`).
fn assert_arms_agree(
    blocks: &[Block64],
    meta: &TensorMetadata,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let seq = decode_seq(blocks, meta);
    for (i, (fused, b)) in seq.iter().zip(blocks).enumerate() {
        match (fused, decode_group_two_pass(b, meta)) {
            (Ok(f), Ok((t, _))) => {
                prop_assert_eq!(f.len(), t.len(), "block {} fused length diverged", i);
                for (a, b) in f.iter().zip(&t) {
                    prop_assert_eq!(a.to_bits(), b.to_bits(), "block {} fused != two-pass", i);
                }
            }
            (Err(a), Err(b)) => {
                prop_assert_eq!(a.kind, b.kind, "block {} error kind diverged", i)
            }
            (Ok(_), Err(e)) => prop_assert!(
                false,
                "block {i}: two-pass failed ({e}) where fused decoded"
            ),
            (Err(e), Ok(_)) => prop_assert!(
                false,
                "block {i}: fused failed ({e}) where two-pass decoded"
            ),
        }
    }
    let first_err = seq
        .iter()
        .enumerate()
        .find_map(|(i, r)| r.as_ref().err().map(|e| (i, e.kind)));
    for threads in [1usize, 4] {
        let pool = PoolBuilder::new().threads(threads).build();
        let got = with_pool(&pool, || ecco::hw::decode_blocks_parallel(blocks, meta));
        match (&first_err, got) {
            (None, Ok(values)) => {
                let want: Vec<f32> = seq
                    .iter()
                    .flat_map(|r| r.as_ref().unwrap().iter().copied())
                    .collect();
                prop_assert_eq!(values, want, "pool {} values diverged", threads);
            }
            (Some((i, kind)), Err(e)) => {
                prop_assert_eq!(e.kind, *kind, "pool {} error kind diverged", threads);
                prop_assert_eq!(e.block, Some(*i), "pool {} error block diverged", threads);
            }
            (None, Err(e)) => prop_assert!(
                false,
                "pool {threads}: parallel failed ({e}) where sequential decoded"
            ),
            (Some((i, k)), Ok(_)) => prop_assert!(
                false,
                "pool {threads}: parallel decoded where sequential failed at block {i} ({k:?})"
            ),
        }
    }
    Ok(())
}

/// MSB-first bit set on a 64-byte block, mirroring the wire layout.
fn set_bits(bytes: &mut [u8; BLOCK_BYTES], start: usize, len: usize, value: u64) {
    for i in 0..len {
        let bit = (value >> (len - 1 - i)) & 1;
        let pos = start + i;
        let mask = 1u8 << (7 - pos % 8);
        if bit == 1 {
            bytes[pos / 8] |= mask;
        } else {
            bytes[pos / 8] &= !mask;
        }
    }
}

proptest! {
    /// Field-targeted bit flips over serialized metadata snapshots:
    /// decode never panics, and when a mutated snapshot still revives,
    /// both decoder arms agree on it block for block.
    #[test]
    fn metadata_snapshot_bitflips_never_panic(
        flips in prop::collection::vec((0usize..2048, 0u8..8), 1..=8),
        region in 0usize..3,
    ) {
        let fix = fixture();
        let mut bytes = fix.meta_bytes.clone();
        // Aim the flips at one structural region: the fixed header, the
        // pattern centroids, or the codebook tables — structure-aware
        // mutation reaches the deep validators plain random bytes miss.
        let patterns_end = 19 + fix.meta.patterns.len() * 15 * 4;
        let (lo, hi) = match region {
            0 => (0usize, 19usize),
            1 => (19, patterns_end),
            _ => (patterns_end, bytes.len()),
        };
        for (off, bit) in &flips {
            let idx = lo + off % (hi - lo);
            bytes[idx] ^= 1 << bit;
        }
        match decode_metadata(&bytes) {
            Err(e) => prop_assert!(
                matches!(
                    e.kind,
                    DecodeErrorKind::TruncatedStream
                        | DecodeErrorKind::CorruptMetadata
                        | DecodeErrorKind::CorruptCodebook
                        | DecodeErrorKind::LengthMismatch
                ),
                "untyped ingest error: {e}"
            ),
            Ok(revived) => {
                // A surviving snapshot must behave: both arms decode the
                // healthy block stream identically under it (values or
                // identical located errors — e.g. a mutated but sorted
                // centroid table decodes different values; both arms
                // must produce the *same* different values).
                assert_arms_agree(fix.ct.blocks(), &revived)?;
            }
        }
    }

    /// Truncations and length-field lies on compressed-tensor frames:
    /// typed errors only, truncation located at the first missing block.
    #[test]
    fn tensor_frame_truncations_are_located(
        cut in 0usize..4096,
        lie in any::<u32>(),
        lie_count in any::<bool>(),
    ) {
        let fix = fixture();
        let mut bytes = fix.frame_bytes.clone();
        if lie_count {
            // The block-count field must never drive allocation or OOB —
            // it is cross-checked against rows x cols / group_size.
            bytes[19..23].copy_from_slice(&lie.to_le_bytes());
            match decode_tensor(&bytes) {
                Ok(ct) => prop_assert_eq!(ct.blocks(), fix.ct.blocks()),
                Err(e) => prop_assert!(
                    matches!(
                        e.kind,
                        DecodeErrorKind::LengthMismatch | DecodeErrorKind::TruncatedStream
                    ),
                    "lied count produced {e}"
                ),
            }
        } else {
            let cut = cut % bytes.len();
            bytes.truncate(cut);
            let e = decode_tensor(&bytes).unwrap_err();
            prop_assert!(
                matches!(
                    e.kind,
                    DecodeErrorKind::TruncatedStream | DecodeErrorKind::CorruptMetadata
                ),
                "truncation at {cut} produced {e}"
            );
            // Cuts inside the block payload locate the first missing block.
            if cut >= 23 && e.kind == DecodeErrorKind::TruncatedStream {
                prop_assert_eq!(e.block, Some((cut - 23) / BLOCK_BYTES));
            }
        }
    }

    /// Corrupt and spliced block streams: the sequential and parallel
    /// arms agree error-for-error across pools, and the salvage report
    /// zero-fills exactly the corrupt groups.
    #[test]
    fn corrupt_block_streams_keep_arms_in_agreement(
        mutations in prop::collection::vec((0usize..16, 0usize..512), 1..=6),
        splice in any::<bool>(),
        swap in (0usize..16, 0usize..16),
    ) {
        let fix = fixture();
        let mut blocks = fix.ct.blocks().to_vec();
        for (bi, bit) in &mutations {
            let bi = bi % blocks.len();
            let mut bytes = *blocks[bi].as_bytes();
            bytes[bit / 8] ^= 1 << (bit % 8);
            blocks[bi] = Block64::from_bytes(bytes);
        }
        if splice {
            // Splice: blocks are position-independent, so a swapped pair
            // must decode to swapped (or identically failing) groups.
            let (a, b) = (swap.0 % blocks.len(), swap.1 % blocks.len());
            blocks.swap(a, b);
        }
        assert_arms_agree(&blocks, &fix.meta)?;

        // The per-block salvage report agrees with the sequential scan:
        // zero-filled groups exactly where decode_group fails, located
        // errors naming those blocks.
        let seq = decode_seq(&blocks, &fix.meta);
        let bad: Vec<usize> = seq
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.is_err().then_some(i))
            .collect();
        let report = ecco::hw::decode_tensors_batch_report(
            &[(&blocks[..], &fix.meta)],
            RecoveryPolicy::SalvageBlocks,
        );
        let gs = fix.meta.group_size;
        match &report[0] {
            BatchOutcome::Ok(values) => {
                prop_assert!(bad.is_empty(), "healthy report for corrupt stream");
                let want: Vec<f32> = seq
                    .iter()
                    .flat_map(|r| r.as_ref().unwrap().iter().copied())
                    .collect();
                prop_assert_eq!(values.clone(), want);
            }
            BatchOutcome::Salvaged { values, bad_blocks } => {
                let located: Vec<usize> =
                    bad_blocks.iter().map(|e| e.block.unwrap()).collect();
                prop_assert_eq!(&located, &bad, "salvage disagreed on bad blocks");
                for (i, r) in seq.iter().enumerate() {
                    let got = &values[i * gs..(i + 1) * gs];
                    match r {
                        Ok(v) => prop_assert_eq!(got, &v[..], "healthy block {} altered", i),
                        Err(_) => prop_assert!(
                            got.iter().all(|&x| x == 0.0),
                            "corrupt block {i} not zero-filled"
                        ),
                    }
                }
            }
            BatchOutcome::Failed(e) => prop_assert!(
                false,
                "salvage mode failed the whole tensor: {e}"
            ),
        }
    }
}

proptest! {
    /// Random bit flips anywhere in a container image: opening and
    /// loading never panic, and **checksum-before-decode** holds — a
    /// tensor slot either round-trips bit-identically to the pristine
    /// baseline or fails with a located `ChecksumMismatch`; a flipped
    /// frame can never leak different values out of a "successful" load,
    /// because its CRC is checked before any decode touches it.
    #[test]
    fn container_bitflips_never_panic_or_leak(
        flips in prop::collection::vec((0usize..1 << 16, 0u8..8), 1..=8),
    ) {
        let fix = fixture();
        let mut image = fix.image.clone();
        let len = image.len();
        for (off, bit) in &flips {
            image[off % len] ^= 1 << bit;
        }
        let container = match Container::from_bytes(image) {
            // Open refused the image with a typed error — that is the
            // no-panic property doing its job.
            Err(_) => return Ok(()),
            Ok(c) => c,
        };
        // If the image opened, the directory survived its CRC, so both
        // names resolve and the report itself cannot fail.
        let slots = container
            .load_report(&[T0, T1], RecoveryPolicy::SalvageBlocks)
            .expect("names come from the CRC-verified directory");
        for (slot, want) in slots.iter().zip([
            fix.codec.decompress(&fix.ct),
            fix.codec.decompress(&fix.ct2),
        ]) {
            match &slot.outcome {
                BatchOutcome::Ok(values) => {
                    prop_assert_eq!(&values[..], want.data(), "flipped frame leaked values")
                }
                BatchOutcome::Failed(e) => prop_assert_eq!(
                    e.kind,
                    DecodeErrorKind::ChecksumMismatch,
                    "frame corruption surfaced as {} instead of a checksum mismatch", e
                ),
                BatchOutcome::Salvaged { .. } => prop_assert!(
                    false,
                    "block-level salvage on a frame whose CRC should have failed first"
                ),
            }
        }
    }

    /// Truncating a container anywhere — tail directory included — is a
    /// typed open failure, never a panic and never a partial success.
    #[test]
    fn container_truncations_always_refuse(cut in 0usize..1 << 16) {
        let fix = fixture();
        let cut = cut % fix.image.len();
        prop_assert!(Container::from_bytes(fix.image[..cut].to_vec()).is_err());
    }
}

/// Index-entry lies, resealed under a valid directory CRC so they reach
/// the structural validators: offsets past EOF, overlapping frames,
/// wrong block counts, lied decoded lengths, duplicate names and an
/// inflated entry count must every one surface as a typed error located
/// at the lying entry — before any frame byte is decoded.
#[test]
fn container_index_lies_are_located() {
    let fix = fixture();
    let fields = entry_field_positions(&fix.image);
    let open_err = |image: Vec<u8>| decode_err(Container::from_bytes(image).unwrap_err());

    // Entry 1's frame offset points past EOF.
    let mut image = fix.image.clone();
    let past_eof = (image.len() as u64).to_le_bytes();
    image[fields[1]..fields[1] + 8].copy_from_slice(&past_eof);
    reseal_directory(&mut image);
    let e = open_err(image);
    assert_eq!(e.kind, DecodeErrorKind::CorruptMetadata);
    assert_eq!(e.tensor, Some(1));

    // Entry 1 claims entry 0's offset: overlapping frames.
    let mut image = fix.image.clone();
    let offset0 = fix.image[fields[0]..fields[0] + 8].to_vec();
    image[fields[1]..fields[1] + 8].copy_from_slice(&offset0);
    reseal_directory(&mut image);
    let e = open_err(image);
    assert_eq!(e.kind, DecodeErrorKind::CorruptMetadata);
    assert!(e.tensor.is_some(), "overlap not located");

    // Block count off by one: the stored frame length no longer matches
    // `header + count × 64`.
    let mut image = fix.image.clone();
    let bc = u32::from_le_bytes(image[fields[0] + 16..fields[0] + 20].try_into().unwrap());
    image[fields[0] + 16..fields[0] + 20].copy_from_slice(&(bc - 1).to_le_bytes());
    reseal_directory(&mut image);
    let e = open_err(image);
    assert_eq!(e.kind, DecodeErrorKind::LengthMismatch);
    assert_eq!(e.tensor, Some(0));

    // Decoded length disagrees with `block_count × group_size`.
    let mut image = fix.image.clone();
    let dl = u64::from_le_bytes(image[fields[0] + 20..fields[0] + 28].try_into().unwrap());
    image[fields[0] + 20..fields[0] + 28].copy_from_slice(&(dl + 1).to_le_bytes());
    reseal_directory(&mut image);
    let e = open_err(image);
    assert_eq!(e.kind, DecodeErrorKind::LengthMismatch);
    assert_eq!(e.tensor, Some(0));

    // Entry 1 renamed to entry 0's (equal-length) name: duplicate key.
    let mut image = fix.image.clone();
    let name_at = |f: usize| f - T0.len()..f;
    let name0 = fix.image[name_at(fields[0])].to_vec();
    image[name_at(fields[1])].copy_from_slice(&name0);
    reseal_directory(&mut image);
    let e = open_err(image);
    assert_eq!(e.kind, DecodeErrorKind::CorruptMetadata);
    assert_eq!(e.tensor, Some(1));

    // Entry count inflated by one: the directory ends mid-"entry 2".
    let mut image = fix.image.clone();
    let f = image.len() - FOOTER_BYTES;
    let index_offset = u64::from_le_bytes(image[f..f + 8].try_into().unwrap()) as usize;
    image[index_offset + 4..index_offset + 8].copy_from_slice(&3u32.to_le_bytes());
    reseal_directory(&mut image);
    let e = open_err(image);
    assert_eq!(e.kind, DecodeErrorKind::TruncatedStream);
    assert_eq!(e.tensor, Some(2));

    // A lying footer pointer (no reseal possible — the pointer is what
    // the CRC region is computed *from*) still refuses cleanly.
    let mut image = fix.image.clone();
    image[f..f + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(Container::from_bytes(image).is_err());
}

/// Frame corruption is isolated: a bit-flipped frame fails its own slot
/// with a located `ChecksumMismatch` while its neighbour loads
/// bit-identically — one rotten tensor never poisons the container.
#[test]
fn container_frame_corruption_is_isolated() {
    let fix = fixture();
    let pristine = Container::from_bytes(fix.image.clone()).unwrap();
    let frame0 = pristine.entries()[0].clone();

    let mut image = fix.image.clone();
    image[(frame0.offset + frame0.len / 2) as usize] ^= 0x10;
    let container = Container::from_bytes(image).unwrap();

    let e = decode_err(container.read_compressed(T0).unwrap_err());
    assert_eq!(e.kind, DecodeErrorKind::ChecksumMismatch);
    assert_eq!(e.tensor, Some(0));

    let slots = container
        .load_report(&[T0, T1], RecoveryPolicy::SalvageBlocks)
        .unwrap();
    assert!(matches!(
        &slots[0].outcome,
        BatchOutcome::Failed(e) if e.kind == DecodeErrorKind::ChecksumMismatch
    ));
    match &slots[1].outcome {
        BatchOutcome::Ok(values) => {
            assert_eq!(&values[..], fix.codec.decompress(&fix.ct2).data());
        }
        other => panic!("healthy neighbour failed: {other:?}"),
    }
    // Strict load refuses the corrupt tensor but serves the healthy one.
    assert!(container.load(&[T0]).is_err());
    assert!(container.load(&[T1]).is_ok());
}

/// Length-field lies, exhaustively: write an all-ones u32 over every
/// 4-byte window of the metadata snapshot. No panic, no multi-gigabyte
/// allocation, only typed errors (or a still-valid snapshot when the
/// window lands in a don't-care position like a centroid payload).
#[test]
fn metadata_length_field_lies_are_typed() {
    let fix = fixture();
    for off in 0..fix.meta_bytes.len().saturating_sub(4) {
        let mut bytes = fix.meta_bytes.clone();
        bytes[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        if let Err(e) = decode_metadata(&bytes) {
            assert!(
                matches!(
                    e.kind,
                    DecodeErrorKind::TruncatedStream
                        | DecodeErrorKind::CorruptMetadata
                        | DecodeErrorKind::CorruptCodebook
                        | DecodeErrorKind::LengthMismatch
                ),
                "offset {off}: untyped ingest error {e}"
            );
        }
    }
}

/// The taxonomy audit: every [`DecodeErrorKind`] variant is reachable
/// from a real ingest path. Enumerates [`DecodeErrorKind::ALL`] so adding
/// a variant without a covering corruption fails this test.
#[test]
fn every_decode_error_kind_is_reachable_from_ingest() {
    let fix = fixture();
    let meta = &fix.meta;
    let block0 = fix.ct.blocks()[0];
    let mut reached: BTreeSet<DecodeErrorKind> = BTreeSet::new();
    let mut reach = |e: DecodeError| {
        reached.insert(e.kind);
    };

    // BadPatternId: a metadata set with no patterns makes every decoded
    // pattern id out of range.
    let mut no_patterns = meta.clone();
    no_patterns.patterns.clear();
    reach(decode_group(&block0, &no_patterns).unwrap_err());

    // BadBookId: force ID_HF to 1 against rows truncated to one book.
    let mut one_book = meta.clone();
    for row in &mut one_book.books {
        row.truncate(1);
    }
    let mut bytes = *block0.as_bytes();
    set_bits(&mut bytes, 0, meta.id_hf_bits as usize, 1);
    reach(decode_group(&Block64::from_bytes(bytes), &one_book).unwrap_err());

    // BadScaleFactor: overwrite the SF field with the FP8 E4M3 NaN.
    let mut bytes = *block0.as_bytes();
    set_bits(&mut bytes, meta.id_hf_bits as usize, 8, 0x7F);
    reach(decode_group(&Block64::from_bytes(bytes), meta).unwrap_err());

    // CorruptMetadata: a block naming a pattern with no codebook row —
    // and, on the wire, a flipped magic.
    let mut no_books = meta.clone();
    no_books.books.clear();
    reach(decode_group(&block0, &no_books).unwrap_err());
    let mut bad_magic = fix.meta_bytes.clone();
    bad_magic[0] ^= 0xFF;
    assert!(!bad_magic.starts_with(&METADATA_MAGIC));
    reach(decode_metadata(&bad_magic).unwrap_err());

    // CorruptCodebook: splice a Kraft-violating revived book into the
    // slot this block selects.
    let header = parse_block_header(&block0, meta).expect("fixture block is healthy");
    let mut bad_book = meta.clone();
    bad_book.books[header.kp][header.book_id] =
        ecco::entropy::huffman::Codebook::from_serialized_parts(vec![0; 16], vec![0; 16], 8);
    reach(decode_group(&block0, &bad_book).unwrap_err());

    // TruncatedStream: a tensor whose block stream ends a block early.
    let frame = encode_tensor(&fix.ct);
    reach(decode_tensor(&frame[..frame.len() - BLOCK_BYTES]).unwrap_err());
    // A well-formed frame still round-trips through the report API.
    let outcome = fix.codec.decompress_batch_report(
        &[&decode_tensor(&frame).unwrap()],
        RecoveryPolicy::FailTensor,
    );
    assert!(matches!(outcome[0], BatchOutcome::Ok(_)));

    // LengthMismatch: a trailing byte after a well-formed frame.
    let mut trailing = frame.clone();
    trailing.push(0);
    reach(decode_tensor(&trailing).unwrap_err());

    // ChecksumMismatch: a bit-flipped container frame fails its CRC
    // before any decode touches it.
    let mut image = fix.image.clone();
    let frame0 = Container::from_bytes(image.clone()).unwrap().entries()[0].clone();
    image[frame0.offset as usize + 10] ^= 1;
    let corrupt_container = Container::from_bytes(image).unwrap();
    reach(decode_err(
        corrupt_container.read_compressed(T0).unwrap_err(),
    ));

    // WorkerPanic: a panicking decode closure in the batch driver.
    let results = ecco::codec::parallel::decode_tensors_batch_with(
        &[fix.ct.blocks()],
        meta.group_size,
        || (),
        |(), _, _, _| panic!("injected ingest panic"),
    );
    reach(*results[0].as_ref().unwrap_err());

    let missing: Vec<DecodeErrorKind> = DecodeErrorKind::ALL
        .into_iter()
        .filter(|k| !reached.contains(k))
        .collect();
    assert!(
        missing.is_empty(),
        "taxonomy kinds unreachable from ingest tests: {missing:?}"
    );
}
