//! Smoke tests for every experiment driver: fast, reduced-scale versions
//! of the table/figure generators, asserting the paper's headline claims.

use ecco::accuracy::perplexity::{fp16_wikitext_ppl, llama2_7b_spec, PerplexityModel};
use ecco::accuracy::zeroshot::zero_shot_table;
use ecco::accuracy::{LayerStack, Method};
use ecco::hw::{AreaPowerModel, PipelineSpec};
use ecco::prelude::*;

#[test]
fn table1_headline_claims_hold() {
    let pm = PerplexityModel::calibrate();
    let spec = llama2_7b_spec();
    let stack = LayerStack::build(&spec);
    let fp16 = fp16_wikitext_ppl(&spec);

    let ppl = |m: Method| pm.predict(&spec, &m.evaluate(&stack));

    // W4A16: Ecco competitive with AWQ, both ahead of GPTQ-R and Olive.
    let (ecco, awq, gptq, olive) = (
        ppl(Method::EccoW4),
        ppl(Method::AwqW4),
        ppl(Method::GptqR),
        ppl(Method::OliveW4),
    );
    assert!(ecco <= awq + 0.02, "Ecco {ecco} vs AWQ {awq}");
    assert!(awq < gptq && gptq < olive, "{awq} < {gptq} < {olive}");
    assert!(ecco - fp16 < 0.25, "Ecco delta {}", ecco - fp16);

    // W4A8KV4: Ecco best, RTN worst.
    let rows = [
        ppl(Method::RtnW4A8Kv4),
        ppl(Method::AwqW4A8Kv4),
        ppl(Method::QuarotW4A8Kv4),
        ppl(Method::QoqW4A8Kv4),
        ppl(Method::EccoW4A8Kv4),
    ];
    let ecco4 = rows[4];
    assert!(
        rows[..4].iter().all(|&p| p >= ecco4 - 5e-3),
        "Ecco must lead: {rows:?}"
    );
    assert!(
        rows[0] == rows.iter().cloned().fold(0.0, f64::max),
        "RTN worst"
    );
}

#[test]
fn table2_ecco_beats_qoq_and_atom_collapses() {
    let rows = zero_shot_table();
    let avg = |name: &str| {
        rows.iter()
            .find(|r| r.method.starts_with(name))
            .unwrap_or_else(|| panic!("row {name}"))
            .acc[5]
    };
    assert!(avg("Ecco") > avg("QoQ"));
    assert!(avg("Atom") < avg("QoQ") - 5.0, "Atom W4A4 must collapse");
    assert!(avg("Origin") >= avg("Ecco"));
}

#[test]
fn table3_envelope() {
    let m = AreaPowerModel::a100();
    assert!(m.die_fraction() < 0.01, "<1% of the A100 die");
    assert!(m.idle_power_fraction() < 0.10, "<10% of idle power");
    assert_eq!(PipelineSpec::shipped().decompress_cycles(), 28);
}

#[test]
fn figure11_speedup_directions() {
    let engine = SimEngine::new(GpuSpec::a100());
    // Batch sweep: Ecco wins everywhere; AWQ crosses below FP16 at 64.
    for bs in [1usize, 64] {
        let wl = DecodeWorkload::new(ModelSpec::llama_13b(), bs, 2048);
        let fp16 = wl.step_time(&engine, &ExecScheme::fp16_trt()).total;
        let ecco = wl.step_time(&engine, &ExecScheme::ecco()).total;
        let awq = wl.step_time(&engine, &ExecScheme::awq()).total;
        assert!(ecco < fp16 && ecco < awq, "Ecco fastest at bs {bs}");
        if bs == 1 {
            assert!(awq < fp16, "AWQ wins at batch 1");
        } else {
            assert!(awq > fp16, "AWQ loses at batch 64");
        }
    }
}

#[test]
fn figure12_figure13_ratios() {
    let model = ModelSpec::llama_7b();
    let fp16 = ecco::llm::memory::footprint(&model, &ExecScheme::fp16_trt(), 32, 2048);
    let ours = ecco::llm::memory::footprint(&model, &ExecScheme::ecco(), 32, 2048);
    let r = fp16.total() / ours.total();
    assert!(r > 3.9 && r <= 4.0, "memory reduction {r} (paper 3.98x)");

    let engine = SimEngine::new(GpuSpec::a100());
    let gemm = ecco::sim::Kernel::gemm(16, 13824, 5120);
    let req16 = engine.memory_requests(&gemm, &ExecScheme::fp16_trt()) as f64;
    let reqe = engine.memory_requests(&gemm, &ExecScheme::ecco()) as f64;
    assert!(req16 / reqe > 3.0, "request reduction {}", req16 / reqe);
}

#[test]
fn figure14_sensitivity_shapes() {
    let engine = SimEngine::new(GpuSpec::a100());
    let wl = DecodeWorkload::new(ModelSpec::llama_13b(), 8, 2048);
    let base = wl
        .step_time(
            &engine,
            &ExecScheme::ecco_with(DecompressorModel::shipped()),
        )
        .total;
    // 90% throughput: negligible; 10%: pronounced.
    let t90 = wl
        .step_time(
            &engine,
            &ExecScheme::ecco_with(DecompressorModel::shipped().with_throughput_frac(0.9)),
        )
        .total;
    let t10 = wl
        .step_time(
            &engine,
            &ExecScheme::ecco_with(DecompressorModel::shipped().with_throughput_frac(0.1)),
        )
        .total;
    assert!(t90 / base < 1.1, "90% throughput costs {}x", t90 / base);
    assert!(t10 / base > 3.0, "10% throughput costs {}x", t10 / base);

    // Latency 300 cycles: ~1.3x, as in the paper.
    let t300 = wl
        .step_time(
            &engine,
            &ExecScheme::ecco_with(DecompressorModel::shipped().with_latency_cycles(300)),
        )
        .total;
    assert!(
        t300 / base > 1.15 && t300 / base < 1.45,
        "latency slowdown {}",
        t300 / base
    );
}

#[test]
fn figure10_padding_ordering() {
    // K-cache pads most, V-cache second, weights least — the Figure 10
    // fingerprint.
    let cfg = EccoConfig::default();
    let w = SynthSpec::for_kind(TensorKind::Weight, 64, 1024)
        .seeded(9)
        .generate();
    let k = SynthSpec::for_kind(TensorKind::KCache, 64, 1024)
        .seeded(9)
        .generate();
    let v = SynthSpec::for_kind(TensorKind::VCache, 64, 1024)
        .seeded(9)
        .generate();
    let wp = {
        let c = WeightCodec::calibrate(&[&w], &cfg);
        c.compress(&w).1.pad_ratio()
    };
    let kp = {
        let c = KvCodec::calibrate(&[&k], &cfg);
        c.compress(&k).1.pad_ratio()
    };
    let vp = {
        let c = KvCodec::calibrate(&[&v], &cfg);
        c.compress(&v).1.pad_ratio()
    };
    assert!(kp > vp && vp > wp, "pad ordering k={kp} v={vp} w={wp}");
    assert!(kp > 0.04, "k-cache pads heavily ({kp})");
}
