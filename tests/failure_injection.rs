//! Failure injection: corrupted, truncated and adversarial blocks must
//! never panic, and header corruption must be reported.

use ecco::bits::{
    set_window_dispatch, window_dispatch, BitWriter, Block64, WindowDispatch, BLOCK_BITS,
};
use ecco::codec::block::DecodeErrorKind;
use ecco::codec::{decode_group, encode_group};
use ecco::hw::{decode_block_parallel, decode_blocks_parallel};
use ecco::prelude::*;

fn test_meta() -> (TensorMetadata, Tensor) {
    let t = SynthSpec::for_kind(TensorKind::Weight, 16, 1024)
        .seeded(2001)
        .generate();
    let cfg = EccoConfig {
        num_patterns: 16,
        max_calibration_groups: 256,
        ..EccoConfig::default()
    };
    let meta = TensorMetadata::calibrate(&[&t], &cfg, PatternSelector::MseOptimal);
    (meta, t)
}

#[test]
fn single_bit_flips_never_panic() {
    let (meta, t) = test_meta();
    let g = t.groups(128).next().unwrap();
    let (block, _) = encode_group(g, &meta, PatternSelector::MseOptimal);
    for bit in 0..BLOCK_BITS {
        let mut bytes = *block.as_bytes();
        bytes[bit / 8] ^= 1 << (7 - bit % 8);
        let corrupted = Block64::from_bytes(bytes);
        match decode_group(&corrupted, &meta) {
            Ok((vals, _)) => assert_eq!(vals.len(), 128),
            Err(e) => assert!(matches!(
                e.kind,
                DecodeErrorKind::BadPatternId
                    | DecodeErrorKind::BadBookId
                    | DecodeErrorKind::BadScaleFactor
            )),
        }
        // The parallel model must agree with the sequential decoder even
        // on corrupted data (same error or same values).
        match (
            decode_group(&corrupted, &meta),
            decode_block_parallel(&corrupted, &meta),
        ) {
            (Ok((a, _)), Ok((b, _))) => assert_eq!(a, b, "bit {bit}"),
            (Err(ea), Err(eb)) => assert_eq!(ea, eb, "bit {bit}"),
            (a, b) => panic!("decoders disagree on bit {bit}: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn all_zero_and_all_one_blocks() {
    let (meta, _) = test_meta();
    for fill in [0x00u8, 0xFF] {
        let block = Block64::from_bytes([fill; 64]);
        if let Ok((vals, _)) = decode_group(&block, &meta) {
            assert_eq!(vals.len(), 128)
        }
    }
}

#[test]
fn truncated_writer_blocks_are_zero_padded_safely() {
    let (meta, _) = test_meta();
    // A header-only block: valid header fields, no symbol data at all.
    let mut w = BitWriter::new();
    w.write_bits(0, meta.id_hf_bits); // book 0
    w.write_bits(0x38, 8); // SF = 1.0 in FP8
    meta.pattern_code.encode_symbol(&mut w, 0);
    let block = Block64::from_writer(w).unwrap();
    let (vals, info) = decode_group(&block, &meta).expect("header is valid");
    assert_eq!(vals.len(), 128);
    // Whatever the zero-fill decodes to, the total is always 128 values
    // and the clip accounting covers the remainder.
    assert_eq!(info.decoded_symbols + info.clipped_symbols, 128);
}

#[test]
fn random_blocks_fuzz_both_decoders() {
    let (meta, _) = test_meta();
    let mut state = 0xDEADBEEFu64;
    for _ in 0..500 {
        let mut bytes = [0u8; 64];
        for b in &mut bytes {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *b = (state >> 56) as u8;
        }
        let block = Block64::from_bytes(bytes);
        let seq = decode_group(&block, &meta);
        let par = decode_block_parallel(&block, &meta);
        match (seq, par) {
            (Ok((a, _)), Ok((b, _))) => assert_eq!(a, b),
            (Err(a), Err(b)) => assert_eq!(a, b),
            (a, b) => panic!("decoders disagree: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn batched_pipeline_survives_truncated_and_garbage_blocks() {
    // Drive adversarial blocks through the *batched* sharded path
    // (windows8 extraction + gathered LUT probes per worker run), on
    // both dispatch arms: truncated header-only blocks, zero/one fill,
    // and pseudo-random garbage. The pipeline must never panic, must
    // report the first per-block error in order, and on decodable sets
    // must be bit-identical to per-block decoding.
    let (meta, _) = test_meta();

    // Truncated block: valid header, zero symbol data (the encoder's
    // zero-fill clip shape).
    let mut w = BitWriter::new();
    w.write_bits(0, meta.id_hf_bits);
    w.write_bits(0x38, 8); // SF = 1.0 in FP8
    meta.pattern_code.encode_symbol(&mut w, 0);
    let truncated = Block64::from_writer(w).unwrap();

    let mut candidates = vec![truncated, Block64::from_bytes([0x00; 64])];
    let mut state = 0xFEE1_5EEDu64;
    for _ in 0..200 {
        let mut bytes = [0u8; 64];
        for b in &mut bytes {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *b = (state >> 56) as u8;
        }
        candidates.push(Block64::from_bytes(bytes));
    }

    // Keep only blocks whose headers parse, so the batch is decodable
    // end-to-end; the rejected rest must error identically through the
    // batched path.
    let decodable: Vec<Block64> = candidates
        .iter()
        .copied()
        .filter(|b| decode_group(b, &meta).is_ok())
        .collect();
    assert!(decodable.len() > 1, "need decodable garbage in the batch");

    let mut reference = Vec::new();
    for b in &decodable {
        reference.extend(decode_block_parallel(b, &meta).unwrap().0);
    }
    let host_tier = window_dispatch();
    let batched = decode_blocks_parallel(&decodable, &meta).unwrap();
    set_window_dispatch(WindowDispatch::Portable);
    let scalar = decode_blocks_parallel(&decodable, &meta);
    set_window_dispatch(host_tier);
    assert_eq!(batched, reference, "batched pipeline diverged on garbage");
    assert_eq!(scalar.unwrap(), reference, "forced-scalar arm diverged");

    // A batch containing a corrupted header must surface that block's
    // error, exactly as the sequential loop would — now located at the
    // block's index in the batch.
    if let Some(bad) = candidates.iter().find(|b| decode_group(b, &meta).is_err()) {
        let mixed = vec![decodable[0], *bad, decodable[1]];
        let got = decode_blocks_parallel(&mixed, &meta).unwrap_err();
        assert_eq!(got.kind, decode_group(bad, &meta).unwrap_err().kind);
        assert_eq!(got.block, Some(1), "error must locate the corrupt block");
    }
}

#[test]
fn batched_submission_isolates_injected_failures_per_tensor() {
    // The multi-tensor batch API under the same adversarial inputs as
    // the single-pipeline test above: truncated (header-only) and
    // garbage blocks are injected into *some* tensors of a batch, and
    // each slot must fail or succeed exactly as its own per-block loop
    // would — on both window-dispatch arms. No panic may escape, and
    // healthy tensors must decode bit-identically to the sequential
    // reference regardless of their neighbours.
    let (meta, t) = test_meta();
    let good: Vec<Block64> = t
        .groups(128)
        .take(8)
        .map(|g| encode_group(g, &meta, PatternSelector::MseOptimal).0)
        .collect();

    // Truncated: valid header, no symbol data (decodes, zero-filled).
    let mut w = BitWriter::new();
    w.write_bits(0, meta.id_hf_bits);
    w.write_bits(0x38, 8); // SF = 1.0 in FP8
    meta.pattern_code.encode_symbol(&mut w, 0);
    let truncated = Block64::from_writer(w).unwrap();
    let mut with_truncated = good.clone();
    with_truncated[4] = truncated;

    // Garbage that fails header parse (all-ones SF decodes to NaN).
    let mut with_garbage = good.clone();
    with_garbage[2] = Block64::from_bytes([0xFF; 64]);
    let want_err = decode_group(&with_garbage[2], &meta).unwrap_err();

    let reference: Vec<f32> = good
        .iter()
        .flat_map(|b| decode_group(b, &meta).unwrap().0)
        .collect();
    let truncated_reference: Vec<f32> = with_truncated
        .iter()
        .flat_map(|b| decode_group(b, &meta).unwrap().0)
        .collect();

    let host_tier = window_dispatch();
    for force_scalar in [false, true] {
        if force_scalar {
            set_window_dispatch(WindowDispatch::Portable);
        }
        let results = ecco::hw::decode_tensors_batch(&[
            (&good, &meta),
            (&with_garbage, &meta),
            (&with_truncated, &meta),
            (&good, &meta),
        ]);
        set_window_dispatch(host_tier);
        assert_eq!(results[0].as_ref().unwrap(), &reference);
        let got = results[1].as_ref().unwrap_err();
        assert_eq!(got.kind, want_err.kind);
        assert_eq!(
            (got.tensor, got.block),
            (Some(1), Some(2)),
            "batch error must locate the garbage block (scalar={force_scalar})"
        );
        assert_eq!(results[2].as_ref().unwrap(), &truncated_reference);
        assert_eq!(results[3].as_ref().unwrap(), &reference);
    }
}

#[test]
fn multi_bit_corruption_never_panics_and_decoders_agree() {
    // The satellite beyond single-bit flips: 2..=16 simultaneous bit
    // flips scattered across one block, driven through both the
    // sequential and parallel decoders. Never a panic, always agreement.
    let (meta, t) = test_meta();
    let g = t.groups(128).next().unwrap();
    let (block, _) = encode_group(g, &meta, PatternSelector::MseOptimal);
    let mut state = 0xC0FFEE42u64;
    let mut rng = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    for trial in 0..300 {
        let flips = 2 + rng() % 15;
        let mut bytes = *block.as_bytes();
        for _ in 0..flips {
            let bit = rng() % BLOCK_BITS;
            bytes[bit / 8] ^= 1 << (7 - bit % 8);
        }
        let corrupted = Block64::from_bytes(bytes);
        match (
            decode_group(&corrupted, &meta),
            decode_block_parallel(&corrupted, &meta),
        ) {
            (Ok((a, _)), Ok((b, _))) => {
                assert_eq!(a.len(), 128);
                assert_eq!(a, b, "trial {trial}");
            }
            (Err(ea), Err(eb)) => assert_eq!(ea, eb, "trial {trial}"),
            (a, b) => panic!("decoders disagree on trial {trial}: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn cross_block_corruption_is_located_at_the_right_block() {
    // Corruption spanning *several* blocks of one stream: every corrupt
    // block is independent (blocks are self-contained), and the batched
    // pipeline must report the FIRST corrupt block's index, while the
    // salvage report names every one of them.
    let (meta, t) = test_meta();
    let good: Vec<Block64> = t
        .groups(128)
        .take(12)
        .map(|g| encode_group(g, &meta, PatternSelector::MseOptimal).0)
        .collect();

    // Find blocks that reliably fail header parse when NaN-scaled.
    let make_bad = |b: &Block64| {
        let mut bytes = *b.as_bytes();
        // Force the SF byte (bits id_hf_bits..id_hf_bits+8) to NaN by
        // saturating the first two bytes — same shape as the single-bit
        // test's worst case.
        bytes[0] = 0xFF;
        bytes[1] = 0xFF;
        Block64::from_bytes(bytes)
    };
    let mut corrupted = good.clone();
    for &i in &[3usize, 7, 9] {
        corrupted[i] = make_bad(&corrupted[i]);
        assert!(decode_group(&corrupted[i], &meta).is_err());
    }

    // Fail-fast pipeline: first corrupt block in block order.
    let err = decode_blocks_parallel(&corrupted, &meta).unwrap_err();
    assert_eq!(err.block, Some(3), "first corrupt block is index 3");
    assert_eq!(
        err.kind,
        decode_group(&corrupted[3], &meta).unwrap_err().kind
    );

    // Salvage report: all three named, in block order, others intact.
    let report = ecco::hw::decode_tensors_batch_report(
        &[(&corrupted, &meta), (&good, &meta)],
        ecco::codec::parallel::RecoveryPolicy::SalvageBlocks,
    );
    let healthy: Vec<f32> = good
        .iter()
        .flat_map(|b| decode_group(b, &meta).unwrap().0)
        .collect();
    assert_eq!(report[1].values().unwrap(), &healthy);
    match &report[0] {
        ecco::codec::parallel::BatchOutcome::Salvaged { values, bad_blocks } => {
            let located: Vec<Option<usize>> = bad_blocks.iter().map(|e| e.block).collect();
            assert_eq!(located, vec![Some(3), Some(7), Some(9)]);
            assert!(bad_blocks.iter().all(|e| e.tensor == Some(0)));
            let gs = meta.group_size;
            for (i, b) in good.iter().enumerate() {
                let got = &values[i * gs..(i + 1) * gs];
                if [3, 7, 9].contains(&i) {
                    assert!(got.iter().all(|&v| v == 0.0), "block {i} must be zeroed");
                } else {
                    assert_eq!(got, &decode_group(b, &meta).unwrap().0, "block {i}");
                }
            }
        }
        other => panic!("expected salvage, got {other:?}"),
    }
}

#[test]
fn activation_codec_handles_extremes() {
    let codec = ActivationCodec::new();
    // Saturated FP16 values, constant groups, alternating signs.
    for pattern in [
        vec![60000.0f32; 64],
        vec![-60000.0f32; 64],
        (0..64)
            .map(|i| if i % 2 == 0 { 1e4 } else { -1e4 })
            .collect::<Vec<_>>(),
        vec![0.0f32; 64],
    ] {
        let block = codec.compress_group(&pattern);
        let out = codec.decompress_group(&block);
        assert_eq!(out.len(), 64);
        for (a, b) in pattern.iter().zip(&out) {
            assert!(
                (a - b).abs() <= (a.abs() * 0.02).max(1e-3) + (pattern_range(&pattern) / 127.0),
                "{a} -> {b}"
            );
        }
    }
}

fn pattern_range(p: &[f32]) -> f32 {
    let lo = p.iter().cloned().fold(f32::INFINITY, f32::min);
    let hi = p.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    hi - lo
}
