//! Root-package coverage of the persistent worker pool and the batched
//! multi-tensor submission APIs.
//!
//! Tier-1 verification (`cargo test -q` at the repo root) runs only this
//! package's tests, so this file is what guarantees the pool scheduler —
//! dynamic chunk claiming, the sequential fast path, `ECCO_THREADS`
//! sizing, batch submission, failure isolation and panic hygiene — is
//! exercised on every tier-1 run, not just by the workspace CI run
//! (mirror of `parallel_roundtrip.rs` for the decoder front end).

use ecco::bits::Block64;
use ecco::codec::block::DecodeErrorKind;
use ecco::pool::{threads_from_env, with_pool, Pool, PoolBuilder};
use ecco::prelude::*;

fn small_tensors(n: usize, kind: TensorKind, seed: u64) -> Vec<Tensor> {
    (0..n)
        .map(|i| {
            SynthSpec::for_kind(kind, 2, 512)
                .seeded(seed + i as u64)
                .generate()
        })
        .collect()
}

#[test]
fn pool_scaling_bit_identical_and_batch_equals_loop() {
    let tensors = small_tensors(6, TensorKind::Weight, 9000);
    let refs: Vec<&Tensor> = tensors.iter().collect();
    let codec = WeightCodec::calibrate(&refs, &EccoConfig::default());

    // Reference: per-tensor sequential compress on the default pool.
    let seq: Vec<_> = tensors.iter().map(|t| codec.compress(t)).collect();

    for threads in [1usize, 2, 4] {
        let pool = PoolBuilder::new().threads(threads).build();
        with_pool(&pool, || {
            assert_eq!(Pool::current().executors(), threads);
            // Batched submission == per-tensor loop, bit for bit.
            let batch = codec.compress_batch(&refs);
            for ((ct, _), (want_ct, _)) in batch.iter().zip(&seq) {
                assert_eq!(ct.blocks(), want_ct.blocks(), "threads {threads}");
            }
            let cts: Vec<&_> = batch.iter().map(|(ct, _)| ct).collect();
            let decompressed: Vec<Tensor> = codec
                .decompress_batch(&cts)
                .into_iter()
                .map(|r| r.expect("valid blocks decode"))
                .collect();
            for (out, (want_ct, _)) in decompressed.iter().zip(&seq) {
                assert_eq!(out.data(), codec.decompress(want_ct).data());
            }

            // The hardware model's batched submission reconstructs the
            // identical values.
            let metas: Vec<TensorMetadata> = batch
                .iter()
                .map(|(ct, _)| codec.metadata().with_scale(ct.tensor_scale()))
                .collect();
            let hw_batch: Vec<(&[Block64], &TensorMetadata)> = batch
                .iter()
                .zip(&metas)
                .map(|((ct, _), m)| (ct.blocks(), m))
                .collect();
            for (r, out) in ecco::hw::decode_tensors_batch(&hw_batch)
                .into_iter()
                .zip(&decompressed)
            {
                assert_eq!(r.unwrap(), out.data(), "hw batch diverged");
            }
        });
    }
}

#[test]
fn ecco_threads_env_pins_pool_size() {
    // The builder reads the same environment the lazily-started global
    // pool does; pin to one executor and prove the sequential fast path
    // produces the same bits as a wide pool.
    let prev = std::env::var("ECCO_THREADS").ok();
    std::env::set_var("ECCO_THREADS", "1");
    assert_eq!(threads_from_env(), 1);
    let pinned = PoolBuilder::new().from_env().build();
    // Restore rather than remove: a CI leg pinning ECCO_THREADS for the
    // whole process must stay pinned for the other tests in this binary.
    match prev {
        Some(v) => std::env::set_var("ECCO_THREADS", v),
        None => std::env::remove_var("ECCO_THREADS"),
    }
    assert_eq!(pinned.executors(), 1);

    let t = SynthSpec::for_kind(TensorKind::Weight, 4, 512)
        .seeded(9100)
        .generate();
    let codec = WeightCodec::calibrate(&[&t], &EccoConfig::default());
    let wide = PoolBuilder::new().threads(4).build();
    let a = with_pool(&pinned, || codec.compress_parallel(&t).0);
    let b = with_pool(&wide, || codec.compress_parallel(&t).0);
    assert_eq!(a.blocks(), b.blocks(), "pool size must not change bits");
}

#[test]
fn concurrent_batches_share_one_pool_with_failures_isolated() {
    // The serving regime: N submitting threads push interleaved
    // compress/decompress batches through ONE shared pool, with
    // truncated/garbage blocks injected into some batches. Every
    // round-trip must be bit-exact and every failure confined to its
    // own tensor slot — no panics, no hangs, no cross-request bleed.
    let tensors = small_tensors(4, TensorKind::KCache, 9200);
    let refs: Vec<&Tensor> = tensors.iter().collect();
    let codec = KvCodec::calibrate(&refs, &EccoConfig::default());
    let weight_codec = {
        let w = small_tensors(1, TensorKind::Weight, 9300);
        WeightCodec::calibrate(&[&w[0]], &EccoConfig::default())
    };
    let pool = PoolBuilder::new().threads(4).build();

    std::thread::scope(|s| {
        for worker in 0..4u64 {
            let pool = pool.clone();
            let codec = &codec;
            let weight_codec = &weight_codec;
            let tensors = &tensors;
            s.spawn(move || {
                with_pool(&pool, || {
                    for round in 0..3 {
                        // Interleave: KV compress batch, then a weight
                        // round-trip, then a failure-injected decode batch.
                        let refs: Vec<&Tensor> = tensors.iter().collect();
                        let batch = codec.compress_batch(&refs);
                        for (t, (ct, stats)) in tensors.iter().zip(&batch) {
                            assert_eq!(ct.blocks().len(), t.len() / 128);
                            assert!(stats.nmse() < 0.05, "w{worker} r{round}");
                        }

                        let wt = SynthSpec::for_kind(TensorKind::Weight, 2, 512)
                            .seeded(9400 + worker * 10 + round)
                            .generate();
                        let (wct, _) = weight_codec.compress_parallel(&wt);
                        let out = weight_codec.decompress_batch(&[&wct]);
                        assert_eq!(out[0].as_ref().unwrap().data(), {
                            let d = weight_codec.decompress(&wct);
                            d.data().to_vec()
                        });

                        // Failure injection: garbage blocks in slot 1.
                        let (good, _) = &batch[0];
                        let meta = codec.metadata().with_scale(good.tensor_scale());
                        let garbage: Vec<Block64> = (0..good.blocks().len())
                            .map(|_| Block64::from_bytes([0xFF; 64]))
                            .collect();
                        let mixed = ecco::hw::decode_tensors_batch(&[
                            (good.blocks(), &meta),
                            (&garbage, &meta),
                            (good.blocks(), &meta),
                        ]);
                        assert!(mixed[0].is_ok(), "w{worker} r{round}: good slot 0 failed");
                        assert!(mixed[1].is_err(), "w{worker} r{round}: garbage decoded");
                        assert!(mixed[2].is_ok(), "w{worker} r{round}: good slot 2 failed");
                        assert_eq!(mixed[0], mixed[2]);
                    }
                });
            });
        }
    });
}

#[test]
fn worker_panic_poisons_only_its_batch_and_pool_survives() {
    // Panic hygiene (the regression for pool shutdown/panic handling): a
    // panicking worker task must resolve to an Err for its batch slot —
    // never a hang — and the pool must keep serving afterwards.
    let pool = PoolBuilder::new().threads(4).chunk(1).build();
    with_pool(&pool, || {
        let t = SynthSpec::for_kind(TensorKind::Weight, 4, 512)
            .seeded(9500)
            .generate();
        let codec = WeightCodec::calibrate(&[&t], &EccoConfig::default());
        let (ct, _) = codec.compress_parallel(&t);
        let meta = codec.metadata().with_scale(ct.tensor_scale());
        let seq = codec.decompress(&ct);

        // Inject a panic through the batch driver's decode closure.
        let blocks = ct.blocks();
        let results = ecco::codec::parallel::decode_tensors_batch_with(
            &[blocks, blocks, blocks],
            meta.group_size,
            || (),
            |(), ti, b, out| {
                if ti == 1 {
                    panic!("injected decode panic");
                }
                let (v, _) = ecco::codec::decode_group(b, &meta)?;
                out.extend_from_slice(&v);
                Ok(())
            },
        );
        assert_eq!(results[0].as_ref().unwrap(), seq.data());
        let e = results[1].as_ref().unwrap_err();
        assert_eq!(e.kind, DecodeErrorKind::WorkerPanic);
        assert_eq!(e.tensor, Some(1), "panic must be located at its tensor");
        assert_eq!(results[2].as_ref().unwrap(), seq.data());

        // Joining after the injected panic: the same pool still decodes.
        let again = codec.decompress_batch(&[&ct]);
        assert_eq!(again[0].as_ref().unwrap().data(), seq.data());
    });
}
