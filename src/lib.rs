//! # Ecco — entropy-aware cache compression for LLMs (ISCA '25 reproduction)
//!
//! This meta-crate re-exports the whole workspace under one roof so the
//! examples and downstream users need a single dependency:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`numerics`] | `ecco-numerics` | software FP16 / FP8, power-of-two scales |
//! | [`bits`] | `ecco-bits` | MSB-first bitstreams, 64-byte blocks |
//! | [`entropy`] | `ecco-entropy` | entropy stats, length-limited Huffman |
//! | [`kmeans`] | `ecco-kmeans` | weighted 1-D / vector k-means |
//! | [`tensor`] | `ecco-tensor` | tensors + synthetic LLM tensor generator |
//! | [`pool`] | `ecco-pool` | persistent worker pool, batched submission scheduler |
//! | [`codec`] | `ecco-core` | **the Ecco compression algorithm** |
//! | [`container`] | `ecco-container` | ECCF random-access model container, mmap loader |
//! | [`baselines`] | `ecco-baselines` | RTN / AWQ / GPTQ-R / SmoothQuant / Olive / QuaRot / QoQ |
//! | [`hw`] | `ecco-hw` | parallel decoder, bitonic sorter, compressor, area/power |
//! | [`sim`] | `ecco-sim` | GPU memory-system timing simulator |
//! | [`llm`] | `ecco-llm` | model zoo, decode workloads, traffic mixes, memory footprints |
//! | [`serve`] | `ecco-serve` | multi-tenant paged KV store, compressed cold tier |
//! | [`accuracy`] | `ecco-accuracy` | proxy perplexity / zero-shot harness |
//!
//! # Quick start
//!
//! ```
//! use ecco::codec::{EccoConfig, WeightCodec};
//! use ecco::tensor::{synth::SynthSpec, TensorKind};
//!
//! let weights = SynthSpec::for_kind(TensorKind::Weight, 64, 256).generate();
//! let codec = WeightCodec::calibrate(&[&weights], &EccoConfig::default());
//! let (compressed, stats) = codec.compress(&weights);
//!
//! assert_eq!(compressed.ratio_vs_fp16(), 4.0);
//! assert!(stats.nmse() < 0.02);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench/benches/` for
//! the per-table/per-figure experiment harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ecco_accuracy as accuracy;
pub use ecco_baselines as baselines;
pub use ecco_bits as bits;
pub use ecco_container as container;
pub use ecco_core as codec;
pub use ecco_entropy as entropy;
pub use ecco_hw as hw;
pub use ecco_kmeans as kmeans;
pub use ecco_llm as llm;
pub use ecco_numerics as numerics;
pub use ecco_pool as pool;
pub use ecco_serve as serve;
pub use ecco_sim as sim;
pub use ecco_tensor as tensor;

/// The most commonly used types, importable in one line.
pub mod prelude {
    pub use ecco_core::{
        ActivationCodec, AdaptiveCodec, AdaptivePolicy, CodecStats, EccoConfig, KvCodec,
        PatternSelector, TensorMetadata, WeightCodec,
    };
    pub use ecco_llm::{DecodeWorkload, ModelSpec, TrafficMix};
    pub use ecco_pool::{with_pool, Pool, PoolBuilder};
    pub use ecco_serve::{Admission, PagedKvStore, ServeConfig};
    pub use ecco_sim::{DecompressorModel, EnergyModel, ExecScheme, GpuSpec, SimEngine};
    pub use ecco_tensor::{synth::SynthSpec, Tensor, TensorKind};
}
